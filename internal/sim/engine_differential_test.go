package sim

import (
	"reflect"
	"testing"

	"distda/internal/workloads"
)

// TestEngineSchedulerDifferential runs every workload under every paper
// configuration twice — once with the reference one-tick-at-a-time engine
// scheduler and once with the event-driven fast-forward scheduler — and
// requires bit-identical results. The fast scheduler is an optimization
// only: every counter, every energy figure and every cycle count must
// match the naive loop exactly.
func TestEngineSchedulerDifferential(t *testing.T) {
	ws := workloads.All(workloads.ScaleTest)
	ws = append(ws, workloads.SpMV(workloads.ScaleTest))
	for _, w := range ws {
		// Generate the input once per workload so both schedulers see
		// identical data (workload generators share a seeded rng, so
		// generation order is observable).
		data := w.NewData()
		for _, cfg := range AllPaperConfigs() {
			naiveCfg := cfg
			naiveCfg.NaiveEngine = true
			nRes, nErr := Run(w.Kernel, w.Params, copyData(data), naiveCfg)
			fastCfg := cfg
			fastCfg.NaiveEngine = false
			fRes, fErr := Run(w.Kernel, w.Params, copyData(data), fastCfg)
			if nErr != nil || fErr != nil {
				t.Fatalf("%s on %s: naive err=%v fast err=%v", w.Name, cfg.Name, nErr, fErr)
			}
			// Config echoes the scheduler choice nowhere, so the full
			// result structs must agree field for field.
			if !reflect.DeepEqual(nRes, fRes) {
				t.Errorf("%s on %s: results diverge between schedulers:\nnaive: %+v\nfast:  %+v",
					w.Name, cfg.Name, nRes, fRes)
			}
		}
	}
}

// TestEngineSchedulerDifferentialThreads covers the multithreaded
// strip-mining path, where several accelerator launches interleave.
func TestEngineSchedulerDifferentialThreads(t *testing.T) {
	for _, w := range []*workloads.Workload{
		workloads.BFSMT(workloads.ScaleTest),
		workloads.PathfinderMT(workloads.ScaleTest),
	} {
		data := w.NewData()
		cfg := DistDAIO()
		cfg.NoStreams = true
		for _, threads := range []int{1, 4} {
			naiveCfg := cfg
			naiveCfg.NaiveEngine = true
			nRes, nErr := RunThreads(w.Kernel, w.Params, copyData(data), naiveCfg, threads)
			fRes, fErr := RunThreads(w.Kernel, w.Params, copyData(data), cfg, threads)
			if nErr != nil || fErr != nil {
				t.Fatalf("%s x%d: naive err=%v fast err=%v", w.Name, threads, nErr, fErr)
			}
			if !reflect.DeepEqual(nRes, fRes) {
				t.Errorf("%s x%d: results diverge between schedulers:\nnaive: %+v\nfast:  %+v",
					w.Name, threads, nRes, fRes)
			}
		}
	}
}
