package sim

import (
	"reflect"
	"testing"

	"distda/internal/engine"
	"distda/internal/workloads"
)

// TestEngineSchedulerDifferential runs every workload under every paper
// configuration once per engine scheduling mode — the reference
// one-tick-at-a-time loop, the event-driven fast-forward loop, and the
// default adaptive loop — and requires bit-identical results. The fast
// schedulers are optimizations only: every counter, every energy figure
// and every cycle count must match the naive loop exactly.
func TestEngineSchedulerDifferential(t *testing.T) {
	ws := workloads.All(workloads.ScaleTest)
	ws = append(ws, workloads.SpMV(workloads.ScaleTest))
	for _, w := range ws {
		// Generate the input once per workload so every scheduler sees
		// identical data (workload generators share a seeded rng, so
		// generation order is observable).
		data := w.NewData()
		for _, cfg := range AllPaperConfigs() {
			naiveCfg := cfg
			naiveCfg.EngineMode = engine.ModeNaive
			nRes, nErr := Run(w.Kernel, w.Params, copyData(data), naiveCfg)
			if nErr != nil {
				t.Fatalf("%s on %s: naive err=%v", w.Name, cfg.Name, nErr)
			}
			for _, mode := range []engine.Mode{engine.ModeEvent, engine.ModeAdaptive} {
				fastCfg := cfg
				fastCfg.EngineMode = mode
				fRes, fErr := Run(w.Kernel, w.Params, copyData(data), fastCfg)
				if fErr != nil {
					t.Fatalf("%s on %s (%s): err=%v", w.Name, cfg.Name, mode, fErr)
				}
				// Config echoes the scheduler choice nowhere, so the full
				// result structs must agree field for field.
				if !reflect.DeepEqual(nRes, fRes) {
					t.Errorf("%s on %s: results diverge between naive and %s:\nnaive: %+v\n%s: %+v",
						w.Name, cfg.Name, mode, nRes, mode, fRes)
				}
			}
		}
	}
}

// TestEngineSchedulerDifferentialSharded crosses the scheduler sweep with
// intra-run sharding: the default adaptive scheduler split across {2,4,8}
// shard goroutines must reproduce the naive serial reference bit for bit.
// The configurations cover both launch topologies that actually shard —
// allocation-spread NUCA islands linked by windowed channels, and the
// PIM-in-DRAM backend whose engines pin to memory controllers.
func TestEngineSchedulerDifferentialSharded(t *testing.T) {
	ws := workloads.All(workloads.ScaleTest)
	ws = append(ws, workloads.SpMV(workloads.ScaleTest))
	for _, w := range ws {
		data := w.NewData()
		for _, cfg := range []Config{DistDAFA(), DistDAPIM()} {
			naiveCfg := cfg
			naiveCfg.EngineMode = engine.ModeNaive
			nRes, nErr := Run(w.Kernel, w.Params, copyData(data), naiveCfg)
			if nErr != nil {
				t.Fatalf("%s on %s: naive err=%v", w.Name, cfg.Name, nErr)
			}
			for _, shards := range []int{2, 4, 8} {
				shardCfg := cfg
				shardCfg.EngineMode = engine.ModeAdaptive
				shardCfg.Shards = shards
				sRes, sErr := Run(w.Kernel, w.Params, copyData(data), shardCfg)
				if sErr != nil {
					t.Fatalf("%s on %s (shards=%d): err=%v", w.Name, cfg.Name, shards, sErr)
				}
				if !reflect.DeepEqual(nRes, sRes) {
					t.Errorf("%s on %s: results diverge between naive serial and adaptive shards=%d:\nnaive:   %+v\nsharded: %+v",
						w.Name, cfg.Name, shards, nRes, sRes)
				}
			}
		}
	}
}

// TestEngineSchedulerDifferentialThreads covers the multithreaded
// strip-mining path, where several accelerator launches interleave.
func TestEngineSchedulerDifferentialThreads(t *testing.T) {
	for _, w := range []*workloads.Workload{
		workloads.BFSMT(workloads.ScaleTest),
		workloads.PathfinderMT(workloads.ScaleTest),
	} {
		data := w.NewData()
		cfg := DistDAIO()
		cfg.NoStreams = true
		for _, threads := range []int{1, 4} {
			naiveCfg := cfg
			naiveCfg.EngineMode = engine.ModeNaive
			nRes, nErr := RunThreads(w.Kernel, w.Params, copyData(data), naiveCfg, threads)
			if nErr != nil {
				t.Fatalf("%s x%d: naive err=%v", w.Name, threads, nErr)
			}
			for _, mode := range []engine.Mode{engine.ModeEvent, engine.ModeAdaptive} {
				fastCfg := cfg
				fastCfg.EngineMode = mode
				fRes, fErr := RunThreads(w.Kernel, w.Params, copyData(data), fastCfg, threads)
				if fErr != nil {
					t.Fatalf("%s x%d (%s): err=%v", w.Name, threads, mode, fErr)
				}
				if !reflect.DeepEqual(nRes, fRes) {
					t.Errorf("%s x%d: results diverge between naive and %s:\nnaive: %+v\n%s: %+v",
						w.Name, threads, mode, nRes, mode, fRes)
				}
			}
		}
	}
}

// TestNaiveEngineFlagStillOverrides keeps the legacy boolean working: a
// config asking for the adaptive mode but with NaiveEngine set must run
// the reference scheduler (the two knobs coexist during migration).
func TestNaiveEngineFlagStillOverrides(t *testing.T) {
	w := workloads.Pathfinder(workloads.ScaleTest)
	data := w.NewData()
	cfg := DistDAIO()
	cfg.EngineMode = engine.ModeAdaptive
	cfg.NaiveEngine = true
	nRes, err := Run(w.Kernel, w.Params, copyData(data), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NaiveEngine = false
	aRes, err := Run(w.Kernel, w.Params, copyData(data), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nRes, aRes) {
		t.Error("results diverge between override and adaptive modes")
	}
}
