package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"distda/internal/ir"
)

// kernelGen builds random two-level loop nests over a few objects with a
// mix of affine loads, indirect gathers, reductions, predicated stores and
// in-place updates — the space the compiler claims to handle. Every
// generated kernel must either compile to offloads that validate against
// the interpreter, or be (cleanly) rejected and run on the host.
type kernelGen struct {
	r *rand.Rand
}

func (g *kernelGen) expr(depth int, objs []string, iv string, locals []string) ir.Expr {
	if depth <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return ir.C(float64(g.r.Intn(7) + 1))
		case 1:
			return ir.P("N")
		case 2:
			if len(locals) > 0 {
				return ir.L(locals[g.r.Intn(len(locals))])
			}
			return ir.V(iv)
		default:
			return ir.V(iv)
		}
	}
	switch g.r.Intn(6) {
	case 0, 1:
		ops := []func(a, b ir.Expr) ir.Expr{ir.AddE, ir.SubE, ir.MulE, ir.MinE, ir.MaxE}
		return ops[g.r.Intn(len(ops))](g.expr(depth-1, objs, iv, locals), g.expr(depth-1, objs, iv, locals))
	case 2:
		return ir.AbsE(g.expr(depth-1, objs, iv, locals))
	case 3:
		// Affine load of a random object.
		obj := objs[g.r.Intn(len(objs))]
		off := g.r.Intn(3)
		return ir.Ld(obj, ir.AddE(ir.V(iv), ir.C(float64(off))))
	case 4:
		// Indirect gather through the index object (values are in range by
		// construction).
		return ir.Ld("data", ir.Ld("idx", ir.V(iv)))
	default:
		return g.expr(depth-1, objs, iv, locals)
	}
}

func (g *kernelGen) kernel(seed int64) (*ir.Kernel, map[string]float64, map[string][]float64) {
	g.r = rand.New(rand.NewSource(seed))
	const n = 256
	const span = 8 // affine offsets stay within n+span
	objs := []string{"data", "aux"}

	var body []ir.Stmt
	iv := "j"
	// Optional reduction local.
	useRed := g.r.Intn(2) == 0
	if useRed {
		body = append(body, ir.Set("acc", ir.AddE(ir.L("acc"), g.expr(1, objs, iv, nil))))
	}
	// A store: affine to out, or predicated, or indirect scatter-free.
	val := g.expr(2, objs, iv, nil)
	switch g.r.Intn(3) {
	case 0:
		body = append(body, ir.St("out", ir.V(iv), val))
	case 1:
		body = append(body, ir.Cond(ir.GtE(g.expr(1, objs, iv, nil), ir.C(3)),
			[]ir.Stmt{ir.St("out", ir.V(iv), val)}, nil))
	default:
		body = append(body, ir.St("out", ir.V(iv), ir.AddE(val, ir.Ld("out", ir.V(iv)))))
	}

	inner := ir.Loop(iv, ir.C(0), ir.P("N"), body...)
	stmts := []ir.Stmt{}
	if useRed {
		stmts = append(stmts, ir.Set("acc", ir.C(0)))
	}
	if g.r.Intn(2) == 0 {
		// Wrap in an outer loop with row-offset addressing.
		stmts = append(stmts, ir.Loop("i", ir.C(0), ir.C(3), inner))
	} else {
		stmts = append(stmts, inner)
	}
	if useRed {
		stmts = append(stmts, ir.St("sum", ir.C(0), ir.L("acc")))
	}
	k := &ir.Kernel{
		Name:   fmt.Sprintf("fuzz%d", seed),
		Params: []string{"N"},
		Objects: []ir.ObjDecl{
			{Name: "data", Len: n + span, ElemBytes: 8},
			{Name: "aux", Len: n + span, ElemBytes: 8},
			{Name: "idx", Len: n + span, ElemBytes: 8},
			{Name: "out", Len: n + span, ElemBytes: 8},
			{Name: "sum", Len: 1, ElemBytes: 8},
		},
		Body: stmts,
	}
	params := map[string]float64{"N": n}
	data := map[string][]float64{
		"data": make([]float64, n+span),
		"aux":  make([]float64, n+span),
		"idx":  make([]float64, n+span),
		"out":  make([]float64, n+span),
		"sum":  {0},
	}
	for i := 0; i < n+span; i++ {
		data["data"][i] = float64(g.r.Intn(50))
		data["aux"][i] = float64(g.r.Intn(50))
		data["idx"][i] = float64(g.r.Intn(n))
	}
	return k, params, data
}

// TestFuzzKernelsValidateAcrossConfigs generates random kernels and checks
// that every configuration executes them to a state identical to the
// reference interpreter.
func TestFuzzKernelsValidateAcrossConfigs(t *testing.T) {
	gen := &kernelGen{}
	trials := 60
	if testing.Short() {
		trials = 15
	}
	configs := []Config{OoO(), MonoCA(), MonoDAIO(), DistDAIO(), DistDAF()}
	for seed := int64(0); seed < int64(trials); seed++ {
		k, params, data := gen.kernel(seed)
		if err := ir.Validate(k); err != nil {
			t.Fatalf("seed %d: generated invalid kernel: %v", seed, err)
		}
		for _, cfg := range configs {
			d := copyData(data)
			res, err := Run(k, params, d, cfg)
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, cfg.Name, err)
			}
			if !res.Validated {
				t.Fatalf("seed %d on %s: not validated", seed, cfg.Name)
			}
		}
	}
}
