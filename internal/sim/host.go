package sim

import (
	"fmt"

	"distda/internal/compiler"
	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/ir"
)

// Host timing model parameters (Table III: 5-way Ice-Lake-class OoO).
const (
	hostWidth = 4.0 // sustainable issue width
	hostMLP   = 6.0 // overlapped outstanding misses (MSHR-limited)
	l1Latency = 2.0
)

// taint tracks how a value depends on memory: clean, derived from a load in
// this iteration, or derived from a load in a previous iteration
// (loop-carried — a pointer-chase chain the OoO cannot overlap).
type taint int

const (
	taintClean taint = iota
	taintFresh
	taintCarried
)

func maxTaint(a, b taint) taint {
	if a > b {
		return a
	}
	return b
}

type hval struct {
	v float64
	t taint
}

// host executes the kernel: non-offloaded code through the OoO timing
// model, offloaded innermost loops by launching their accelerator regions.
type host struct {
	m        *machine
	compiled *compiler.Compiled // nil: pure host run
	locals   map[string]hval
	ivs      map[string]float64
	err      error
}

func newHost(m *machine, compiled *compiler.Compiled) *host {
	return &host{m: m, compiled: compiled, locals: map[string]hval{}, ivs: map[string]float64{}}
}

type hostError struct{ err error }

func (h *host) failf(format string, args ...any) {
	panic(hostError{fmt.Errorf("sim: host: "+format, args...)})
}

// checkCancel aborts the run (with an error wrapping ErrCanceled) when the
// config's Cancel channel has closed. It is called at loop boundaries — the
// cost is a nil check on the common uncancellable path.
func (h *host) checkCancel() {
	if c := h.m.cfg.Cancel; c != nil {
		select {
		case <-c:
			panic(hostError{fmt.Errorf("sim: host: %w", ErrCanceled)})
		default:
		}
	}
}

// run executes the kernel body to completion.
func (h *host) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			he, ok := r.(hostError)
			if !ok {
				panic(r)
			}
			err = he.err
		}
	}()
	h.stmts(h.m.kernel.Body)
	return nil
}

// instr accounts one host instruction of the given class.
func (h *host) instr(class ir.OpClass) {
	h.m.hostInstr++
	h.m.slotCycles += 1 / hostWidth
	t := &h.m.meter.Table // by pointer: the table is ~17 words, copied per instruction otherwise
	e := t.OoOInstrPJ
	switch class {
	case ir.ClassInt:
		e += t.IntOpPJ
	case ir.ClassComplex:
		e += t.ComplexOpPJ
	case ir.ClassFloat:
		e += t.FloatOpPJ
	}
	h.m.meter.Add(energy.CatHost, e)
}

// loadTimed performs a host load with the dependence-aware stall model.
// Touching an object written by an in-flight offload first joins it (the
// software-coherence ordering of §IV-D).
func (h *host) loadTimed(obj string, idx int64, dep taint) float64 {
	h.m.joinIfWritten(obj)
	addr, err := h.m.addr(obj, idx)
	if err != nil {
		h.failf("%v", err)
	}
	h.m.hostLoads++
	h.instr(ir.ClassInt)
	lat := float64(h.m.hier.HostAccess(addr, false))
	h.m.hostLatH.Observe(lat)
	stall := lat - l1Latency
	if stall > 0 {
		switch dep {
		case taintCarried:
			h.m.memCycles += stall // serialized dependence chain
		case taintFresh:
			h.m.memCycles += stall / 2 // short chain, partial overlap
		default:
			h.m.memCycles += stall / hostMLP // independent, MLP-overlapped
		}
	}
	return h.m.resolve(obj).data[idx] // resolve succeeded inside addr above
}

func (h *host) storeTimed(obj string, idx int64, v float64) {
	h.m.joinIfWritten(obj)
	addr, err := h.m.addr(obj, idx)
	if err != nil {
		h.failf("%v", err)
	}
	h.m.hostStores++
	h.instr(ir.ClassInt)
	h.m.hier.HostAccess(addr, true) // posted: traffic and energy, no stall
	h.m.resolve(obj).data[idx] = v  // resolve succeeded inside addr above
}

func (h *host) stmts(body []ir.Stmt) {
	skipNext := false
	for _, s := range body {
		if skipNext {
			skipNext = false
			if _, ok := s.(ir.Store); ok {
				continue // folded epilogue: the accelerator performed it
			}
		}
		switch x := s.(type) {
		case ir.Let:
			h.locals[x.Name] = h.eval(x.E)
		case ir.Store:
			idx := h.eval(x.Idx)
			val := h.eval(x.Val)
			h.storeTimed(x.Obj, int64(idx.v), val.v)
		case ir.If:
			c := h.eval(x.Cond)
			h.instr(ir.ClassInt) // branch
			if c.v != 0 {
				h.stmts(x.Then)
			} else {
				h.stmts(x.Else)
			}
		case *ir.For:
			skipNext = h.forLoop(x)
		default:
			h.failf("unknown statement %T", s)
		}
	}
}

// forLoop executes a loop (or launches its offload region) and reports
// whether the statement following it was folded into the offload.
func (h *host) forLoop(f *ir.For) bool {
	// Offloaded region?
	if h.compiled != nil {
		if reg, ok := h.compiled.ByLoop[f]; ok && reg.Class != core.ClassNotOffloaded && len(reg.Accels) > 0 {
			h.checkCancel()
			h.launch(reg)
			return reg.FoldedEpilogue
		}
	}
	lo := h.eval(f.Lo)
	hi := h.eval(f.Hi)
	step := h.eval(f.Step)
	if step.v <= 0 {
		h.failf("loop %s has non-positive step %g", f.IV, step.v)
	}
	if f.Parallel && h.m.cfg.Threads > 1 {
		h.parallelFor(f, lo.v, hi.v, step.v)
		return false
	}
	saved, had := h.ivs[f.IV]
	for v := lo.v; v < hi.v; v += step.v {
		h.checkCancel()
		h.ivs[f.IV] = v
		// Loop control: compare + increment.
		h.instr(ir.ClassInt)
		h.instr(ir.ClassInt)
		// Promote this-iteration taints to loop-carried.
		for name, hv := range h.locals {
			if hv.t == taintFresh {
				hv.t = taintCarried
				h.locals[name] = hv
			}
		}
		h.stmts(f.Body)
	}
	if had {
		h.ivs[f.IV] = saved
	} else {
		delete(h.ivs, f.IV)
	}
	return false
}

// eval interprets an expression with timing and taint tracking.
func (h *host) eval(e ir.Expr) hval {
	switch x := e.(type) {
	case ir.Const:
		return hval{v: x.V}
	case ir.Param:
		v, ok := h.m.params[x.Name]
		if !ok {
			h.failf("unknown parameter %q", x.Name)
		}
		return hval{v: v}
	case ir.IV:
		v, ok := h.ivs[x.Name]
		if !ok {
			h.failf("induction variable %q out of scope", x.Name)
		}
		return hval{v: v}
	case ir.Local:
		hv, ok := h.locals[x.Name]
		if !ok {
			h.failf("undefined local %q", x.Name)
		}
		return hv
	case ir.Load:
		idx := h.eval(x.Idx)
		v := h.loadTimed(x.Obj, int64(idx.v), idx.t)
		return hval{v: v, t: taintFresh}
	case ir.Bin:
		a := h.eval(x.A)
		b := h.eval(x.B)
		h.instr(x.Op.Class())
		v, err := ir.ApplyBin(x.Op, a.v, b.v)
		if err != nil {
			h.failf("%v", err)
		}
		return hval{v: v, t: maxTaint(a.t, b.t)}
	case ir.Un:
		a := h.eval(x.A)
		h.instr(x.Op.Class())
		return hval{v: ir.ApplyUn(x.Op, a.v), t: a.t}
	case ir.Sel:
		c := h.eval(x.Cond)
		tv := h.eval(x.T)
		fv := h.eval(x.F)
		h.instr(ir.ClassInt)
		out := fv
		if c.v != 0 {
			out = tv
		}
		out.t = maxTaint(out.t, c.t)
		return out
	default:
		h.failf("unknown expression %T", e)
		return hval{}
	}
}

// evalScalar evaluates a launch-time configuration expression (stream
// start/stride/length, scalar inits) in host context, with host-side
// loads timed and counted.
func (h *host) evalScalar(e ir.Expr) float64 {
	return h.eval(e).v
}

// parallelFor models the §VI-D multithreading case study: the annotated
// loop's iterations are chunked across T software threads. Chunks execute
// sequentially (iterations are independent, so functional state is
// preserved) while the cycle account keeps only the slowest chunk plus a
// barrier — concurrent threads overlap in time.
func (h *host) parallelFor(f *ir.For, lo, hi, step float64) {
	threads := h.m.cfg.Threads
	n := int64((hi - lo) / step)
	if n <= 0 {
		return
	}
	chunk := (n + int64(threads) - 1) / int64(threads)
	saved, had := h.ivs[f.IV]
	h.m.syncAccel() // barrier entering the parallel section
	var maxDelta, sumHostDelta float64
	for t := int64(0); t < int64(threads); t++ {
		cLo := lo + float64(t*chunk)*step
		cHi := lo + float64((t+1)*chunk)*step
		if cHi > hi {
			cHi = hi
		}
		if cLo >= cHi {
			break
		}
		hBefore := h.m.hostTimeline()
		h.m.accelFreeAt = hBefore // each thread drives its own accelerators
		for v := cLo; v < cHi; v += step {
			h.checkCancel()
			h.ivs[f.IV] = v
			h.instr(ir.ClassInt)
			h.instr(ir.ClassInt)
			for name, hv := range h.locals {
				if hv.t == taintFresh {
					hv.t = taintCarried
					h.locals[name] = hv
				}
			}
			h.stmts(f.Body)
		}
		hostDelta := h.m.hostTimeline() - hBefore
		accelDelta := h.m.accelFreeAt - hBefore
		d := hostDelta
		if accelDelta > d {
			d = accelDelta
		}
		if d > maxDelta {
			maxDelta = d
		}
		sumHostDelta += hostDelta
	}
	// Keep only the slowest thread's time plus a barrier join.
	h.m.cycleAdjust -= int64(sumHostDelta - maxDelta)
	h.m.cycleAdjust += 200
	h.m.accelFreeAt = h.m.hostTimeline() // all offloads joined at the barrier
	if had {
		h.ivs[f.IV] = saved
	} else {
		delete(h.ivs, f.IV)
	}
}
