package sim

import (
	"testing"

	"distda/internal/ir"
)

// hostOnly runs a kernel on the pure host model and returns the machine.
func hostOnly(t *testing.T, k *ir.Kernel, params map[string]float64, data map[string][]float64) *machine {
	t.Helper()
	m, err := newMachine(OoO(), k, params, data)
	if err != nil {
		t.Fatal(err)
	}
	h := newHost(m, nil)
	if err := h.run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHostDependentLoadsStallMore(t *testing.T) {
	const n = 4096
	// Streaming scan vs pointer chase over the same number of loads.
	stream := &ir.Kernel{
		Name:    "scan",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: n, ElemBytes: 8}, {Name: "S", Len: 1, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Set("s", ir.C(0)),
			ir.Loop("i", ir.C(0), ir.P("N"), ir.Set("s", ir.AddE(ir.L("s"), ir.Ld("A", ir.V("i"))))),
			ir.St("S", ir.C(0), ir.L("s")),
		},
	}
	chase := &ir.Kernel{
		Name:    "chase",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: n, ElemBytes: 8}, {Name: "S", Len: 1, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Set("p", ir.C(0)),
			ir.Loop("i", ir.C(0), ir.P("N"), ir.Set("p", ir.Ld("A", ir.L("p")))),
			ir.St("S", ir.C(0), ir.L("p")),
		},
	}
	mkData := func(perm bool) map[string][]float64 {
		a := make([]float64, n)
		for i := range a {
			if perm {
				a[i] = float64((i*2017 + 13) % n) // scattered chain
			} else {
				a[i] = 1
			}
		}
		return map[string][]float64{"A": a, "S": {0}}
	}
	ms := hostOnly(t, stream, map[string]float64{"N": n}, mkData(false))
	mc := hostOnly(t, chase, map[string]float64{"N": n}, mkData(true))
	// Same load count, but the chase's loop-carried chain stalls fully.
	if mc.memCycles < 3*ms.memCycles {
		t.Fatalf("chase stalls %0.f, stream stalls %0.f: dependence model too weak",
			mc.memCycles, ms.memCycles)
	}
}

func TestHostCountsInstructionClasses(t *testing.T) {
	k := &ir.Kernel{
		Name:    "ops",
		Objects: []ir.ObjDecl{{Name: "o", Len: 1, ElemBytes: 8}},
		Body:    []ir.Stmt{ir.St("o", ir.C(0), ir.MulE(ir.C(2), ir.SqrtE(ir.C(9))))},
	}
	m := hostOnly(t, k, nil, map[string][]float64{"o": {0}})
	// mul + sqrt + store.
	if m.hostInstr != 3 {
		t.Fatalf("hostInstr = %d, want 3", m.hostInstr)
	}
	if m.hostStores != 1 {
		t.Fatalf("stores = %d", m.hostStores)
	}
}

func TestJoinOnInflightWrites(t *testing.T) {
	// An offloaded loop writes B asynchronously (no scalar outs); a later
	// host read of B must join the offload (cycles include the engine
	// time); a host read of an untouched object must not.
	build := func(readObj string) (*ir.Kernel, map[string][]float64) {
		k := &ir.Kernel{
			Name:   "async",
			Params: []string{"N"},
			Objects: []ir.ObjDecl{
				{Name: "A", Len: 4096, ElemBytes: 8},
				{Name: "B", Len: 4096, ElemBytes: 8},
				{Name: "C", Len: 4096, ElemBytes: 8},
				{Name: "S", Len: 1, ElemBytes: 8},
			},
			Body: []ir.Stmt{
				ir.Loop("i", ir.C(0), ir.P("N"),
					ir.St("B", ir.V("i"), ir.MulE(ir.Ld("A", ir.V("i")), ir.C(2))),
				),
				ir.Set("x", ir.Ld(readObj, ir.C(0))),
				ir.Set("y", ir.AddE(ir.L("x"), ir.C(1))),
				ir.St("S", ir.C(0), ir.L("y")),
			},
		}
		data := map[string][]float64{
			"A": make([]float64, 4096), "B": make([]float64, 4096),
			"C": make([]float64, 4096), "S": {0},
		}
		return k, data
	}
	kJoin, dJoin := build("B")
	kFree, dFree := build("C")
	params := map[string]float64{"N": 4096}
	rJoin, err := Run(kJoin, params, dJoin, DistDAIO())
	if err != nil {
		t.Fatal(err)
	}
	rFree, err := Run(kFree, params, dFree, DistDAIO())
	if err != nil {
		t.Fatal(err)
	}
	if !rJoin.Validated || !rFree.Validated {
		t.Fatal("not validated")
	}
	// Both end-to-end times are bounded below by the accel timeline, so
	// they are close — but the joining variant must never be faster.
	if rJoin.Cycles < rFree.Cycles {
		t.Fatalf("join (%d) finished before free-running (%d)", rJoin.Cycles, rFree.Cycles)
	}
}

func TestAsyncLaunchOverlapsHostWork(t *testing.T) {
	// Offload (async) followed by substantial independent host compute:
	// total should be close to max(host, accel), not the sum.
	k := &ir.Kernel{
		Name:   "overlap",
		Params: []string{"N", "M"},
		Objects: []ir.ObjDecl{
			{Name: "A", Len: 8192, ElemBytes: 8},
			{Name: "B", Len: 8192, ElemBytes: 8},
			{Name: "H", Len: 8192, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.St("B", ir.V("i"), ir.AddE(ir.Ld("A", ir.V("i")), ir.C(1))),
			),
			// Host-side work on an unrelated object. A nested non-innermost
			// loop shape keeps it on the host.
			ir.Loop("h", ir.C(0), ir.P("M"),
				ir.Loop("g", ir.C(0), ir.C(4),
					ir.St("H", ir.ModE(ir.AddE(ir.V("h"), ir.V("g")), ir.C(8192)),
						ir.MulE(ir.V("h"), ir.C(3))),
				),
			),
		},
	}
	// The inner g-loop offloads too (it is innermost)... verify by running
	// with OoO-only host semantics instead: compare sequential sum bound.
	data := func() map[string][]float64 {
		return map[string][]float64{
			"A": make([]float64, 8192), "B": make([]float64, 8192), "H": make([]float64, 8192),
		}
	}
	params := map[string]float64{"N": 8192, "M": 2048}
	r, err := Run(k, params, data(), DistDAIO())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Validated {
		t.Fatal("not validated")
	}
}

func TestFlushChargedOncePerObject(t *testing.T) {
	// Two offloaded loops over the same objects: the coherence flush cost
	// is paid once per object per kernel (§IV-D), so launches stay cheap.
	k := &ir.Kernel{
		Name:   "twice",
		Params: []string{"N"},
		Objects: []ir.ObjDecl{
			{Name: "A", Len: 4096, ElemBytes: 8},
			{Name: "B", Len: 4096, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.St("B", ir.V("i"), ir.AddE(ir.Ld("A", ir.V("i")), ir.C(1)))),
			ir.Loop("j", ir.C(0), ir.P("N"),
				ir.St("B", ir.V("j"), ir.AddE(ir.Ld("A", ir.V("j")), ir.C(2)))),
		},
	}
	data := map[string][]float64{"A": make([]float64, 4096), "B": make([]float64, 4096)}
	r, err := Run(k, map[string]float64{"N": 4096}, data, DistDAIO())
	if err != nil {
		t.Fatal(err)
	}
	if r.Launches != 2 {
		t.Fatalf("launches = %d, want 2", r.Launches)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := &Result{Cycles: 100, HostInstr: 150, AccelOps: 50, MemOps: 60, EnergyPJ: 500, DataMovedBytes: 1000}
	if r.Instructions() != 200 || r.IPC() != 2 || r.MemOpRate() != 0.6 {
		t.Fatal("derived metrics")
	}
	base := &Result{Cycles: 200, EnergyPJ: 1500, DataMovedBytes: 2500}
	if r.SpeedupVs(base) != 2 || r.EnergyEfficiencyVs(base) != 3 || r.DataMovementReductionVs(base) != 2.5 {
		t.Fatal("ratios")
	}
	r2 := &Result{MMIOHost: 3, MemOps: 600}
	if pct := r2.InitOverheadPct(); pct != 0.5 {
		t.Fatalf("%%init = %g", pct)
	}
}
