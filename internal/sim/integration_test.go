package sim

import (
	"testing"

	"distda/internal/workloads"
)

// TestAllWorkloadsAllConfigs is the §VI validation statement: every
// benchmark executes to completion under every tested configuration and the
// simulated memory matches the reference interpreter exactly.
func TestAllWorkloadsAllConfigs(t *testing.T) {
	for _, w := range workloads.All(workloads.ScaleTest) {
		for _, cfg := range AllPaperConfigs() {
			res, err := Run(w.Kernel, w.Params, w.NewData(), cfg)
			if err != nil {
				t.Errorf("%s on %s: %v", w.Name, cfg.Name, err)
				continue
			}
			if !res.Validated {
				t.Errorf("%s on %s: not validated", w.Name, cfg.Name)
			}
		}
	}
}

func TestCaseStudyConfigs(t *testing.T) {
	for _, cfg := range []Config{DistDAIOSW(), DistDAFA(), DistDAIO().WithClock(1), DistDAIO().WithClock(3)} {
		w := workloads.Seidel2D(workloads.ScaleTest)
		res, err := Run(w.Kernel, w.Params, w.NewData(), cfg)
		if err != nil {
			t.Fatalf("%s on %s: %v", w.Name, cfg.Name, err)
		}
		if !res.Validated {
			t.Fatalf("%s on %s: not validated", w.Name, cfg.Name)
		}
	}
}

func TestSpMVAcrossConfigs(t *testing.T) {
	w := workloads.SpMV(workloads.ScaleTest)
	for _, cfg := range []Config{OoO(), DistDAIO()} {
		res, err := Run(w.Kernel, w.Params, w.NewData(), cfg)
		if err != nil {
			t.Fatalf("spmv on %s: %v", cfg.Name, err)
		}
		if !res.Validated {
			t.Fatalf("spmv on %s: not validated", cfg.Name)
		}
	}
}

func TestMTWorkloads(t *testing.T) {
	for _, w := range []*workloads.Workload{
		workloads.BFSMT(workloads.ScaleTest),
		workloads.PathfinderMT(workloads.ScaleTest),
	} {
		cfg := DistDAIO()
		cfg.NoStreams = true // §VI-D: stream specialization skipped
		var prev int64
		for _, threads := range []int{1, 2, 4, 8} {
			res, err := RunThreads(w.Kernel, w.Params, w.NewData(), cfg, threads)
			if err != nil {
				t.Fatalf("%s x%d: %v", w.Name, threads, err)
			}
			if !res.Validated {
				t.Fatalf("%s x%d: not validated", w.Name, threads)
			}
			if prev > 0 && res.Cycles > prev*11/10 {
				t.Errorf("%s: %d threads slower than previous (%d > %d)", w.Name, threads, res.Cycles, prev)
			}
			prev = res.Cycles
		}
	}
}
