package sim

import (
	"fmt"

	"distda/internal/accessunit"
	"distda/internal/backend"
	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/engine"
	"distda/internal/engine/shard"
	"distda/internal/ir"
	"distda/internal/microcode"
	"distda/internal/noc"
	"distda/internal/trace"
)

// accelRT is the per-launch runtime state of one accelerator definition.
type accelRT struct {
	def      *core.AccelDef
	cluster  int
	offChip  bool // §VII: placed at the memory controller
	streams  map[int]core.EvaledStream
	inPorts  map[int]*accessunit.InPort
	outPorts map[int]*accessunit.OutPort
	// chanSrc / chanCons: channel endpoint buffers by access-id.
	chanSrc  map[int]*accessunit.Buffer
	chanCons map[int]*accessunit.Buffer
	regs     regFile
}

// regFile abstracts cp_set_rf / cp_load_rf over every backend engine.
type regFile interface {
	SetReg(r int, v float64)
	Reg(r int) float64
}

// backendFor resolves the accelerator backend executing a region: the
// partitioner's per-region choice (Region.Backend) wins over the config
// default. Backend options follow the config's backend only — a region
// steered elsewhere gets that backend's defaults.
func (h *host) backendFor(reg *core.Region) (backend.Backend, backend.Options) {
	name := reg.Backend
	opts := h.m.cfg.BackendOpts
	if name == "" {
		name = h.m.cfg.Backend
	} else if name != h.m.cfg.Backend {
		opts = nil
	}
	be, ok := backend.Lookup(name)
	if !ok {
		h.failf("launch: region %s has no registered accelerator backend (%q)", reg.Name, name)
	}
	return be, opts
}

// mmioHost accounts one host-initiated MMIO transaction to a cluster.
func (m *machine) mmioHost(in core.Intrinsic, cluster int) {
	m.mmio.Record(in)
	m.meter.Add(energy.CatMMIO, m.meter.Table.MMIOPJ)
	m.mesh.Transfer(m.hier.HostNode(), cluster, 8, noc.HostCtrl)
	m.slotCycles += 4
	m.hostInstr++
}

// launch configures, runs and tears down one offload region instance.
func (h *host) launch(reg *core.Region) {
	m := h.m
	// Evaluate every accel's orchestrator count; an all-empty region is
	// skipped (the host's bound evaluation was already charged).
	trips := make(map[int]int64, len(reg.Accels))
	any := false
	for _, def := range reg.Accels {
		if def.Trip.Kind == core.TripCounted {
			t := int64(h.evalScalar(def.Trip.Count))
			trips[def.ID] = t
			if t > 0 {
				any = true
			}
		} else {
			trips[def.ID] = -1 // while-input
			any = true
		}
	}
	if !any {
		return
	}
	m.launches++
	be, beOpts := h.backendFor(reg)
	m.scoped = m.scoped[:0] // deferred trace attachments for this launch
	// Profiling: the dispatch phase spans every host cycle from here (flush,
	// buffer planning, MMIO configuration) until the engine takes over.
	dispatchStart := m.hostTimeline()

	// Software-managed coherence: push host-dirty copies of offload-visible
	// objects to their home banks once per kernel (§IV-D).
	flushT0 := m.hostTS()
	for _, a := range reg.Accels {
		for _, obj := range a.Objects {
			if m.flushedObjs[obj] {
				continue
			}
			m.flushedObjs[obj] = true
			r, ok := m.slab.Lookup(obj)
			if !ok {
				h.failf("launch: unallocated object %q", obj)
			}
			m.memCycles += float64(m.hier.FlushRange(r.Base, r.Bytes))
		}
	}
	if t1 := m.hostTS(); t1 > flushT0 {
		m.hostTrace.Span("flush", flushT0, t1-flushT0, trace.KV{K: "region", V: reg.Name})
	}

	// Pass 1: evaluate stream configurations and place accelerators.
	rts := make([]*accelRT, len(reg.Accels))
	for i, def := range reg.Accels {
		rt := &accelRT{
			def: def, streams: map[int]core.EvaledStream{},
			inPorts: map[int]*accessunit.InPort{}, outPorts: map[int]*accessunit.OutPort{},
			chanSrc: map[int]*accessunit.Buffer{}, chanCons: map[int]*accessunit.Buffer{},
		}
		for _, acc := range def.Accesses {
			if acc.Kind == core.StreamIn || acc.Kind == core.StreamOut {
				rt.streams[acc.ID] = core.EvaledStream{
					Start:  int64(h.evalScalar(acc.Start)),
					Stride: int64(h.evalScalar(acc.Stride)),
					Length: int64(h.evalScalar(acc.Length)),
				}
			}
		}
		rt.cluster = h.placeAccel(reg, rt)
		if m.cfg.OffChip && rt.def.AnchorObj != "" {
			if d, ok := m.kernel.Object(rt.def.AnchorObj); ok && d.Bytes() >= m.cfg.OffChipThreshold {
				rt.offChip = true
				rt.cluster = 7 // the memory-controller node
			}
		}
		rts[i] = rt
	}
	// Anchor-less accels co-locate with their first channel peer.
	for _, rt := range rts {
		if rt.cluster >= 0 {
			continue
		}
		rt.cluster = m.hier.HostNode()
		for _, acc := range rt.def.Accesses {
			if acc.Kind == core.ChanIn || acc.Kind == core.ChanOut {
				if peer := rts[acc.Peer.Accel]; peer.cluster >= 0 {
					rt.cluster = peer.cluster
					break
				}
			}
		}
	}
	// In-DRAM backends execute at the memory controller: every engine and
	// its access FSMs sit at the channel and fetch through the direct-DRAM
	// path — resident data never crosses the on-chip NoC.
	if be.Caps().InDRAM {
		for _, rt := range rts {
			rt.offChip = true
			rt.cluster = 7 // the memory-controller node
		}
	}

	eng := engine.New()
	eng.Mode = m.cfg.EngineMode
	if m.cfg.NaiveEngine {
		eng.Mode = engine.ModeNaive
	}
	eng.CollectFF = m.prof != nil

	// Intra-run sharding: partition the accelerators into islands by the
	// NUCA resources they may touch and assemble each island against a
	// private environment (see shard.go). Tracing and the Mono-CA private
	// cache share per-run state across accelerators, so those paths stay
	// serial, as does any launch whose claims collapse into one island.
	serial := m.serialEnv(eng)
	envOf := make([]*launchEnv, len(rts))
	envs := []*launchEnv{serial}
	sharded := false
	var islandClusters [][]int
	if m.cfg.Shards > 1 && m.tr == nil && !(m.cfg.Centralized && m.cfg.PrivCacheKB > 0) {
		if islands, clusters := h.planShards(rts); len(islands) >= 2 {
			sharded = true
			islandClusters = clusters
			if shardObserver != nil {
				shardObserver(len(islands))
			}
			var nextComp int32
			envs = make([]*launchEnv, len(islands))
			for k, members := range islands {
				envs[k] = m.newIslandEnv(&nextComp)
				envs[k].island = k
				for _, u := range members {
					envOf[u] = envs[k]
				}
			}
		}
	}
	if !sharded {
		for i := range envOf {
			envOf[i] = serial
		}
	}

	// Pass 2: buffers, FSMs, links for stream accesses; channel endpoint
	// buffers.
	// The combining window may not exceed half the buffer: a combined
	// accessor's read offset must fit inside the shared window.
	combineWindow := m.cfg.CombineWindow
	if lim := int64(m.cfg.BufElems) / 2; combineWindow > lim {
		combineWindow = lim
	}
	for ri, rt := range rts {
		env := envOf[ri]
		plan, err := core.PlanBuffers(rt.def, rt.streams, combineWindow, m.cfg.Combining)
		if err != nil {
			h.failf("launch: %v", err)
		}
		m.alloc.RecordLaunch(plan)
		if !m.configured[rt.def.ID] {
			m.configured[rt.def.ID] = true
			m.mmioHost(core.CpConfig, rt.cluster)
		}
		for _, ba := range plan.Buffers {
			if len(ba.Accesses) > 1 {
				// Multi-access combining (Fig. 2d): accessors beyond the
				// first share the buffer instead of owning one.
				m.combinedC.Add(int64(len(ba.Accesses) - 1))
			}
			first := rt.def.Accesses[ba.Accesses[0]]
			switch first.Kind {
			case core.StreamIn:
				if err := h.wireStreamIn(env, rt, ba); err != nil {
					h.failf("launch: %v", err)
				}
			case core.StreamOut:
				if err := h.wireStreamOut(env, rt, ba); err != nil {
					h.failf("launch: %v", err)
				}
			case core.ChanOut:
				b, err := m.newBuffer(env)
				if err != nil {
					h.failf("launch: %v", err)
				}
				rt.chanSrc[first.ID] = b
				rt.outPorts[first.ID] = &accessunit.OutPort{Buf: b}
			case core.ChanIn:
				b, err := m.newBuffer(env)
				if err != nil {
					h.failf("launch: %v", err)
				}
				rt.chanCons[first.ID] = b
				rt.inPorts[first.ID] = accessunit.NewInPort(b, 0)
			}
		}
	}

	// Pass 3: links between channel endpoints. Peers sharing an island get
	// a local wire; peers on different islands get the split form — the Tx
	// half in the producer's engine, the Rx half in the consumer's, joined
	// by latency-stamped shard channels the windowed coordinator drains at
	// barriers in canonical order.
	var xchans []*shard.Channel
	for ri, rt := range rts {
		env := envOf[ri]
		for _, acc := range rt.def.Accesses {
			if acc.Kind != core.ChanOut {
				continue
			}
			peer := rts[acc.Peer.Accel]
			penv := envOf[acc.Peer.Accel]
			dst := peer.chanCons[acc.Peer.Access]
			if dst == nil {
				h.failf("launch: channel %d.%d has no consumer buffer", rt.def.ID, acc.ID)
			}
			src := rt.chanSrc[acc.ID]
			if env == penv {
				tx, rx := accessunit.NewLocalLink(src, dst, env.mesh, rt.cluster, peer.cluster, acc.ElemBytes, env.austats)
				env.add(tx, 2)
				env.add(rx, 2)
			} else {
				tx, rx, chans := crossLink(env, penv, src, dst, rt.cluster, peer.cluster, acc.ElemBytes)
				env.add(tx, 2)
				penv.add(rx, 2)
				xchans = append(xchans, chans...)
			}
		}
	}

	// Pass 4: backend engines, scalar initialization, cp_run.
	var engines []backend.Engine
	var randomPorts []*accessunit.RandomPort
	for ri, rt := range rts {
		env := envOf[ri]
		fetch := h.fetcherFor(env, rt)
		rp := accessunit.NewRandomPort(newSimMemory(m), fetch, rt.cluster, env.austats, env.meter)
		if len(rt.def.Prefill) > 0 {
			rp.Prefill = map[string]bool{}
			for _, obj := range rt.def.Prefill {
				rp.Prefill[obj] = true
				// cp_fill_ra: block-fetch the object window line by line.
				r, ok := m.slab.Lookup(obj)
				if !ok {
					h.failf("launch: prefill of unallocated object %q", obj)
				}
				fillHost := 0
				for addr := r.Base; addr < r.End(); addr += 64 {
					lat, _ := m.hier.ClusterAccess(rt.cluster, addr, false, 64)
					// Fills pipeline: the port is busy a fraction of the
					// access latency per line.
					fillHost += lat / 4
					m.austats.DABytes += 64
				}
				m.accelBase += int64(fillHost) * hostDiv
				m.mmio.Record(core.CpFillRA)
				m.mmioHost(core.CpConfigRandom, rt.cluster)
			}
		}
		randomPorts = append(randomPorts, rp)
		e, err := be.NewEngine(backend.LaunchSpec{
			Def: rt.def, Trips: trips[rt.def.ID],
			In: rt.inPorts, Out: rt.outPorts, Random: rp,
			GHz: m.cfg.AccelGHz, Width: m.cfg.IOWidth,
			Meter: env.meter, Metrics: env.met, Opts: beOpts,
		})
		if err != nil {
			h.failf("launch: backend %s: %v", be.Name(), err)
		}
		if m.tr != nil {
			e := e
			m.scoped = append(m.scoped, func(off int64) { e.AttachTrace(m.tr, off) })
		}
		rt.regs = e
		engines = append(engines, e)
		env.add(e, m.cfg.AccelGHz)
		firstLaunch := !m.scalarsSent[rt.def]
		m.scalarsSent[rt.def] = true
		for _, sb := range rt.def.ScalarInit {
			rt.regs.SetReg(sb.Reg, h.evalScalar(sb.Expr))
			// Launch-invariant scalars (pure params/constants) travel with
			// the one-time cp_config; only per-launch values (outer IVs,
			// loads) cost an MMIO write each launch.
			if firstLaunch || !launchInvariant(sb.Expr) {
				m.mmioHost(core.CpSetRF, rt.cluster)
			}
		}
		for _, acc := range rt.def.Accesses {
			switch acc.Kind {
			case core.StreamIn, core.StreamOut:
				m.mmioHost(core.CpConfigStream, rt.cluster)
			}
		}
		h.recordProgramMechanisms(rt.def.Program)
		m.mmioHost(core.CpRun, rt.cluster)
	}

	// Accelerator timeline: this launch occupies the accelerator resources
	// after any prior in-flight launch. The host blocks (cp_consume
	// semantics, §V-B) only when it reads a scalar back; otherwise it runs
	// ahead, overlapping with the offload. The launch's start on the
	// run-global clock is known before the engine runs (nothing changes the
	// host timeline until it returns), so trace scopes attach here: each
	// per-launch engine clock starts at zero and the offset maps its events
	// onto the global timeline.
	hostNow := m.hostTimeline()
	start := hostNow
	if m.accelFreeAt > start {
		start = m.accelFreeAt
	}
	if m.tr != nil {
		off := int64(start * float64(hostDiv))
		for _, attach := range m.scoped {
			attach(off)
		}
		m.scoped = m.scoped[:0]
		eng.Trace = m.tr.Component("engine").At(off)
	}

	var base int64
	var err error
	if sharded {
		base, err = h.runShardEngines(envs, islandClusters, xchans)
	} else {
		base, err = eng.Run(m.cfg.MaxEngine)
	}
	if err != nil {
		h.failf("launch of %s: %v", reg.Name, err)
	}
	m.accelBase += base
	for _, env := range envs {
		m.ffJumps += env.eng.FFJumps
		m.ffSkipped += env.eng.FFSkipped
	}

	engHost := float64(base) / float64(hostDiv)
	m.accelFreeAt = start + engHost
	m.hostTrace.Span("launch:"+reg.Name, int64(start*float64(hostDiv)), base,
		trace.KV{K: "accels", V: int64(len(rts))}, trace.KV{K: "base_cycles", V: base})
	// Profiling: writeback spans the host cycles from here through the
	// cp_load_rf read-back loop (sync waits included).
	wbStart := m.hostTimeline()
	needsSync := false
	for _, rt := range rts {
		if len(rt.def.ScalarOut) > 0 {
			needsSync = true
		}
	}
	if needsSync {
		if wait := m.accelFreeAt - hostNow; wait > 0 {
			m.hostTrace.Span("wait-accel", int64(hostNow*float64(hostDiv)), int64(wait*float64(hostDiv)))
			m.memCycles += wait
		}
		m.inflightWrites = map[string]bool{}
	} else {
		for _, rt := range rts {
			for _, acc := range rt.def.Accesses {
				if acc.Kind == core.StreamOut {
					m.inflightWrites[acc.Obj] = true
				}
			}
			for _, op := range rt.def.Program {
				if op.Code == microcode.StoreObj {
					m.inflightWrites[op.Obj] = true
				}
			}
		}
	}

	// cp_load_rf read-back of carried locals.
	for _, rt := range rts {
		for _, sb := range rt.def.ScalarOut {
			h.locals[sb.Name] = hval{v: rt.regs.Reg(sb.Reg), t: taintFresh}
			m.mmioHost(core.CpLoadRF, rt.cluster)
		}
	}
	for _, e := range engines {
		m.accelOps += e.Ops()
	}
	for _, rp := range randomPorts {
		m.accelMemElem += rp.Loads + rp.Stores
	}

	if m.prof != nil {
		// Offload latency phases (base cycles): dispatch covers the host-side
		// flush + configuration, queue the wait behind a prior in-flight
		// launch, execute the engine run, writeback the sync + read-back.
		pr := m.prof.Region(m.kernel.Name, reg.Name)
		dispatch := int64((hostNow - dispatchStart) * float64(hostDiv))
		queue := int64((start - hostNow) * float64(hostDiv))
		writeback := int64((m.hostTimeline() - wbStart) * float64(hostDiv))
		pr.AddLaunch(dispatch, queue, base, writeback)
		// Per-component attribution. Engines are constructed fresh each launch,
		// so their counters are per-launch values; each backend folds its own
		// breakdown (core busy/stall, per-tile CGRA occupancy, ...) in.
		for _, e := range engines {
			e.AddProfile(m.prof, pr)
		}
	}
}

// placeAccel chooses the accelerator's cluster: Mono-CA pins everything to
// the bus node; Mono-DA pins compute to the region's largest object; Dist
// anchors each partition at its object's home (§V-A-4, §V-B). Returns -1
// when the accel has no anchor (resolved to a peer's cluster by the
// caller).
func (h *host) placeAccel(reg *core.Region, rt *accelRT) int {
	m := h.m
	if m.cfg.PlaceAtHost || m.cfg.Centralized {
		return m.hier.HostNode()
	}
	if !m.cfg.Distribute {
		// Monolithic compute: home of the region's largest object.
		big, size := "", -1
		for _, a := range reg.Accels {
			for _, obj := range a.Objects {
				if d, ok := m.kernel.Object(obj); ok && d.Bytes() > size {
					big, size = obj, d.Bytes()
				}
			}
		}
		if big == "" {
			return m.hier.HostNode()
		}
		r, _ := m.slab.Lookup(big)
		return m.hier.HomeCluster(r.Base)
	}
	def := rt.def
	if def.Place == core.PlaceHost {
		return m.hier.HostNode()
	}
	if def.AnchorObj == "" {
		return -1
	}
	// Home of the first accessed element (greedy horizontal placement).
	r, ok := m.slab.Lookup(def.AnchorObj)
	if !ok {
		h.failf("placeAccel: unallocated anchor %q", def.AnchorObj)
	}
	addr := r.Base
	for _, acc := range def.Accesses {
		if (acc.Kind == core.StreamIn || acc.Kind == core.StreamOut) && acc.Obj == def.AnchorObj {
			ev := rt.streams[acc.ID]
			cand := r.Base + ev.Start*int64(acc.ElemBytes)
			if cand >= r.Base && cand < r.End() {
				addr = cand
			}
			break
		}
	}
	return m.hier.HomeCluster(addr)
}

// fetcherFor returns the cache-path fetcher for an accelerator, wired to
// the launch environment's hierarchy view and counters. The private-cache
// path is shared across accelerators and launches, so it always runs under
// the serial environment (sharding is disabled for that configuration).
func (h *host) fetcherFor(env *launchEnv, rt *accelRT) accessunit.Fetcher {
	m := h.m
	if rt.offChip {
		return dramFetcher{dmem: env.dmem}
	}
	if m.cfg.Centralized && m.cfg.PrivCacheKB > 0 {
		if m.priv == nil {
			pf, err := newPrivFetcher(m, m.cfg.PrivCacheKB, rt.cluster)
			if err != nil {
				h.failf("%v", err)
			}
			m.priv = pf
		}
		return m.priv
	}
	return clusterFetcher{hier: env.hier, meter: env.meter, latH: env.clusterLatH, prefetchHalve: m.cfg.SWPrefetch}
}

// wireStreamIn builds the fill FSM for one (possibly combined) stream-in
// buffer and the per-accessor read ports; a remote fill FSM (decentralized
// access with monolithic compute) forwards over a link.
func (h *host) wireStreamIn(env *launchEnv, rt *accelRT, ba core.BufferAlloc) error {
	m := h.m
	first := rt.def.Accesses[ba.Accesses[0]]
	// Union window over combined accessors.
	minStart, maxStart := rt.streams[ba.Accesses[0]].Start, rt.streams[ba.Accesses[0]].Start
	stride := rt.streams[ba.Accesses[0]].Stride
	for _, id := range ba.Accesses[1:] {
		s := rt.streams[id].Start
		if s < minStart {
			minStart = s
		}
		if s > maxStart {
			maxStart = s
		}
	}
	length := rt.streams[ba.Accesses[0]].Length
	if stride > 0 {
		length += (maxStart - minStart) / stride
	}
	dataCluster := h.clusterOfElem(ba.Obj, minStart, first.ElemBytes)
	fsmCluster := dataCluster
	if m.cfg.Centralized || rt.offChip {
		fsmCluster = rt.cluster
	}
	fsmBuf, err := m.newBuffer(env)
	if err != nil {
		return err
	}
	fsm, err := accessunit.NewStreamIn(fsmBuf, newSimMemory(m), h.fetcherFor(env, &accelRT{cluster: fsmCluster, def: rt.def, offChip: rt.offChip}),
		fsmCluster, ba.Obj, minStart, stride, length, env.austats, env.meter)
	if err != nil {
		return err
	}
	fsm.LatHist = env.met.Histogram("au/fill_lat")
	if m.tr != nil {
		obj := ba.Obj
		m.scoped = append(m.scoped, func(off int64) {
			fsm.Trace = m.tr.Component("fill:" + obj).At(off)
		})
	}
	env.add(fsm, 2)
	m.mmio.Record(core.CpFillBuf)
	m.accelMemElem += length

	consumerBuf := fsmBuf
	if fsmCluster != rt.cluster {
		consBuf, err := m.newBuffer(env)
		if err != nil {
			return err
		}
		tx, rx := accessunit.NewLocalLink(fsmBuf, consBuf, env.mesh, fsmCluster, rt.cluster, first.ElemBytes, env.austats)
		env.add(tx, 2)
		env.add(rx, 2)
		consumerBuf = consBuf
	}
	for _, id := range ba.Accesses {
		offset := int64(0)
		if stride > 0 {
			offset = (rt.streams[id].Start - minStart) / stride
		}
		rt.inPorts[id] = accessunit.NewInPort(consumerBuf, offset)
	}
	return nil
}

// wireStreamOut builds the drain path for one stream-out access: the core
// produces into a local buffer; the drain FSM sits with the data (or with
// the accel when centralized), behind a link when remote.
func (h *host) wireStreamOut(env *launchEnv, rt *accelRT, ba core.BufferAlloc) error {
	m := h.m
	if len(ba.Accesses) != 1 {
		return fmt.Errorf("sim: combined stream-out buffers are not supported")
	}
	id := ba.Accesses[0]
	acc := rt.def.Accesses[id]
	ev := rt.streams[id]
	dataCluster := h.clusterOfElem(ba.Obj, ev.Start, acc.ElemBytes)
	fsmCluster := dataCluster
	if m.cfg.Centralized || rt.offChip {
		fsmCluster = rt.cluster
	}
	prodBuf, err := m.newBuffer(env)
	if err != nil {
		return err
	}
	drainBuf := prodBuf
	if fsmCluster != rt.cluster {
		db, err := m.newBuffer(env)
		if err != nil {
			return err
		}
		tx, rx := accessunit.NewLocalLink(prodBuf, db, env.mesh, rt.cluster, fsmCluster, acc.ElemBytes, env.austats)
		env.add(tx, 2)
		env.add(rx, 2)
		drainBuf = db
	}
	fsm, err := accessunit.NewStreamOut(drainBuf, newSimMemory(m), h.fetcherFor(env, &accelRT{cluster: fsmCluster, def: rt.def, offChip: rt.offChip}),
		fsmCluster, ba.Obj, ev.Start, ev.Stride, env.austats, env.meter)
	if err != nil {
		return err
	}
	fsm.LatHist = env.met.Histogram("au/drain_lat")
	if m.tr != nil {
		obj := ba.Obj
		m.scoped = append(m.scoped, func(off int64) {
			fsm.Trace = m.tr.Component("drain:" + obj).At(off)
		})
	}
	env.add(fsm, 2)
	m.mmio.Record(core.CpDrainBuf)
	m.accelMemElem += ev.Length
	rt.outPorts[id] = &accessunit.OutPort{Buf: prodBuf}
	return nil
}

// clusterOfElem returns the home cluster of obj[idx] (clamped into range).
func (h *host) clusterOfElem(obj string, idx int64, elemBytes int) int {
	m := h.m
	r, ok := m.slab.Lookup(obj)
	if !ok {
		h.failf("clusterOfElem: unallocated object %q", obj)
	}
	addr := r.Base + idx*int64(elemBytes)
	if addr < r.Base {
		addr = r.Base
	}
	if addr >= r.End() {
		addr = r.End() - 1
	}
	return m.hier.HomeCluster(addr)
}

// recordProgramMechanisms marks Table V coverage from the micro-program.
func (h *host) recordProgramMechanisms(p microcode.Program) {
	for _, op := range p {
		switch op.Code {
		case microcode.Consume:
			h.m.mmio.Record(core.CpConsume)
			h.m.mmio.Record(core.CpStep)
		case microcode.Produce:
			h.m.mmio.Record(core.CpProduce)
			h.m.mmio.Record(core.CpStep)
		case microcode.LoadObj:
			h.m.mmio.Record(core.CpRead)
		case microcode.StoreObj:
			h.m.mmio.Record(core.CpWrite)
		}
	}
}

// launchInvariant reports whether a scalar-init expression has the same
// value at every launch (no induction variables, no loads).
func launchInvariant(e ir.Expr) bool {
	ok := true
	ir.WalkExpr(e, func(x ir.Expr) {
		switch x.(type) {
		case ir.IV, ir.Load, ir.Local:
			ok = false
		}
	})
	return ok
}
