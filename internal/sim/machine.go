package sim

import (
	"fmt"

	"distda/internal/accessunit"
	"distda/internal/cache"
	"distda/internal/core"
	"distda/internal/dram"
	"distda/internal/energy"
	"distda/internal/engine"
	"distda/internal/ir"
	"distda/internal/noc"
	"distda/internal/profile"
	"distda/internal/trace"
)

// hostDiv converts 2 GHz host cycles to base cycles.
var hostDiv = int64(engine.Div(2))

// machine is the assembled system state for one run.
type machine struct {
	cfg    Config
	kernel *ir.Kernel
	params map[string]float64

	meter *energy.Meter
	mesh  *noc.Mesh
	dmem  *dram.Memory
	hier  *cache.Hierarchy
	slab  *dram.Slab
	data  map[string][]float64

	austats *accessunit.Stats
	priv    *privFetcher
	mmio    core.IntrinsicStats
	alloc   core.AllocationTable
	buffers []*accessunit.Buffer

	// objs caches each kernel object's slab region, declaration and backing
	// slice; lastObj remembers the most recent hit. addr/Read/Write run once
	// per simulated stream element, and the slab scan + declaration scan +
	// data-map hash they used to pay per element was a visible slice of the
	// whole-repro profile. Streams touch one object for long stretches, so
	// the MRU compare almost always short-circuits on pointer-equal strings.
	objs    []objInfo
	lastObj *objInfo

	// Counters.
	hostInstr      int64
	hostLoads      int64
	hostStores     int64
	accelOps       int64
	accelMemElem   int64 // stream elements + random accesses by accelerators
	launches       int64
	flushedObjs    map[string]bool
	configured     map[int]bool // accel IDs whose cp_config was transferred
	inflightWrites map[string]bool
	scalarsSent    map[*core.AccelDef]bool

	slotCycles  float64 // host issue-slot cycles
	memCycles   float64 // host memory stall cycles
	accelBase   int64   // engine base cycles spent in offloads
	accelFreeAt float64 // host-cycle time when accelerator resources free
	cycleAdjust int64   // parallel-section overlap credit (§VI-D)

	// Observability (nil-safe: a nil tracer/registry/profiler disables
	// everything).
	tr        *trace.Tracer
	met       *trace.Metrics
	prof      *profile.Profiler
	ffJumps   int64       // engine fast-forward jumps across launches (profiling)
	ffSkipped int64       // base cycles those jumps never visited
	hostTrace trace.Scope // host-timeline track, absolute base-cycle stamps
	// scoped holds deferred trace-scope attachments for the launch being
	// assembled; they run once the launch's base-cycle offset is known.
	scoped []func(offset int64)
	// Hoisted metric handles (per-access paths must not re-lookup by name).
	hostLatH    *trace.Hist
	clusterLatH *trace.Hist
	combinedC   *trace.Counter

	// logFree recycles island energy logs between sharded launches: event
	// buffers reach tens of millions of entries, and regrowing them from
	// scratch on every launch dominated the sharded allocation profile.
	logFree []*energy.Log
}

// newMachine allocates the system and lays out the kernel's objects via the
// slab allocator.
func newMachine(cfg Config, k *ir.Kernel, params map[string]float64, data map[string][]float64) (*machine, error) {
	meter := energy.NewMeter(energy.Default32nm())
	mesh := noc.New(noc.DefaultConfig(), meter)
	dmem := dram.NewMemory(dram.DefaultConfig(), meter)
	ccfg := cache.DefaultConfig(meter.Table)
	ccfg.L2Prefetch = cfg.HostPrefetch
	if cfg.HostPrefDeg > 0 {
		ccfg.PrefetchDegree = cfg.HostPrefDeg
	}
	hier, err := cache.New(ccfg, dmem, mesh, meter)
	if err != nil {
		return nil, err
	}
	slab, err := dram.NewSlab(0, 1<<31, 4096)
	if err != nil {
		return nil, err
	}
	m := &machine{
		cfg: cfg, kernel: k, params: params,
		meter: meter, mesh: mesh, dmem: dmem, hier: hier, slab: slab,
		data:           data,
		austats:        &accessunit.Stats{},
		flushedObjs:    map[string]bool{},
		configured:     map[int]bool{},
		inflightWrites: map[string]bool{},
		scalarsSent:    map[*core.AccelDef]bool{},
	}
	m.tr = cfg.Trace
	m.met = cfg.Metrics
	m.prof = cfg.Profile
	if m.prof != nil {
		// Per-link and per-channel attribution only allocates (and only pays
		// its accounting) when a profiler is attached.
		mesh.EnableLinkProfile()
		dmem.EnableChannelProfile(profileDRAMChannels)
	}
	m.hostTrace = m.tr.Component("host").At(0) // nil-safe: disabled scope on nil tracer
	m.hostLatH = m.met.Histogram("host/load_lat")
	m.clusterLatH = m.met.Histogram("cache/cluster_access_lat")
	m.combinedC = m.met.Counter("au/combined_accessors")
	span := int64(64 << 10) // cache.DefaultConfig ClusterSpanBytes
	for i, o := range k.Objects {
		buf, ok := data[o.Name]
		if !ok || len(buf) != o.Len {
			return nil, fmt.Errorf("sim: object %q missing or mis-sized", o.Name)
		}
		if cfg.AllocSpread {
			// Fig. 14 +A: start each object at a fresh cluster span so
			// anchors spread across clusters.
			target := (int64(i%hier.Clusters()) * span) % (span * int64(hier.Clusters()))
			m.padSlabTo(target, span)
		}
		if _, err := slab.Alloc(o.Name, int64(o.Bytes())); err != nil {
			return nil, err
		}
	}
	m.objs = make([]objInfo, 0, len(k.Objects))
	for _, o := range k.Objects {
		r, _ := slab.Lookup(o.Name)
		m.objs = append(m.objs, objInfo{
			name: o.Name, base: r.Base,
			elemBytes: int64(o.ElemBytes), n: int64(o.Len),
			data: data[o.Name],
		})
	}
	return m, nil
}

// objInfo is one entry of the machine's resolved-object cache.
type objInfo struct {
	name      string
	base      int64
	elemBytes int64
	n         int64
	data      []float64
}

// resolve returns the cached objInfo for obj, or nil if obj is not a
// declared-and-allocated kernel object.
func (m *machine) resolve(obj string) *objInfo {
	if o := m.lastObj; o != nil && o.name == obj {
		return o
	}
	for i := range m.objs {
		if m.objs[i].name == obj {
			m.lastObj = &m.objs[i]
			return m.lastObj
		}
	}
	return nil
}

// padSlabTo inserts padding so the next allocation starts at an address
// congruent to target modulo the cluster ring.
func (m *machine) padSlabTo(target, span int64) {
	// Allocate throwaway padding objects until the next base lines up.
	for i := 0; ; i++ {
		r, err := m.slab.Alloc(fmt.Sprintf("_pad%d_%d", target, i), 64)
		if err != nil {
			return
		}
		if (r.Base/span)%8 == (target/span)%8 {
			return
		}
	}
}

// hostTimeline returns the host's own cycle count (issue slots, memory
// stalls, waits) without in-flight accelerator work.
func (m *machine) hostTimeline() float64 {
	return m.slotCycles + m.memCycles + float64(m.cycleAdjust)
}

// hostTS maps the host timeline onto the run-global base-cycle clock used
// for trace timestamps.
func (m *machine) hostTS() int64 {
	return int64(m.hostTimeline() * float64(hostDiv))
}

// syncAccel blocks the host until outstanding offloads complete (barriers,
// chunk boundaries).
func (m *machine) syncAccel() {
	if wait := m.accelFreeAt - m.hostTimeline(); wait > 0 {
		m.hostTrace.Span("wait-accel", m.hostTS(), int64(wait*float64(hostDiv)))
		m.memCycles += wait
	}
	m.inflightWrites = map[string]bool{}
}

// joinIfWritten synchronizes with outstanding offloads before the host
// touches an object they write.
func (m *machine) joinIfWritten(obj string) {
	if m.inflightWrites[obj] {
		m.syncAccel()
	}
}

// hostCycles returns the end-to-end cycle count: the host timeline or the
// accelerator timeline, whichever is behind — launches without host
// read-backs overlap with host execution (§V-B "the offload model allows
// concurrent execution of the host and multiple accelerators").
func (m *machine) hostCycles() int64 {
	t := m.hostTimeline()
	if m.accelFreeAt > t {
		t = m.accelFreeAt
	}
	return int64(t)
}

// addr returns the physical address of obj[idx].
func (m *machine) addr(obj string, idx int64) (int64, error) {
	o := m.resolve(obj)
	if o == nil {
		return 0, m.addrErr(obj)
	}
	if idx < 0 || idx >= o.n {
		return 0, fmt.Errorf("sim: index %d out of range for %q (len %d)", idx, obj, o.n)
	}
	return o.base + idx*o.elemBytes, nil
}

// addrErr diagnoses a resolve miss (off the hot path).
func (m *machine) addrErr(obj string) error {
	if _, ok := m.slab.Lookup(obj); !ok {
		return fmt.Errorf("sim: unallocated object %q", obj)
	}
	return fmt.Errorf("sim: undeclared object %q", obj)
}

// simMemory adapts the machine's object store to accessunit.Memory. Each
// instance carries its own MRU resolve cursor: access units on concurrent
// shards share the machine's immutable object table, so the cursor — the
// only mutable state — must be per-instance, not on the machine.
type simMemory struct {
	m    *machine
	last *objInfo
}

// newSimMemory returns a fresh adapter with a cold cursor.
func newSimMemory(m *machine) *simMemory { return &simMemory{m: m} }

// resolve is machine.resolve against the instance-local cursor.
func (s *simMemory) resolve(obj string) *objInfo {
	if o := s.last; o != nil && o.name == obj {
		return o
	}
	for i := range s.m.objs {
		if s.m.objs[i].name == obj {
			s.last = &s.m.objs[i]
			return s.last
		}
	}
	return nil
}

func (s *simMemory) Read(obj string, idx int64) (float64, error) {
	o := s.resolve(obj)
	if o == nil {
		return 0, s.m.addrErr(obj)
	}
	if idx < 0 || idx >= o.n {
		return 0, fmt.Errorf("sim: index %d out of range for %q (len %d)", idx, obj, o.n)
	}
	return o.data[idx], nil
}

func (s *simMemory) Write(obj string, idx int64, v float64) error {
	o := s.resolve(obj)
	if o == nil {
		return s.m.addrErr(obj)
	}
	if idx < 0 || idx >= o.n {
		return fmt.Errorf("sim: index %d out of range for %q (len %d)", idx, obj, o.n)
	}
	o.data[idx] = v
	return nil
}

func (s *simMemory) AddrOf(obj string, idx int64) (int64, error) {
	o := s.resolve(obj)
	if o == nil {
		return 0, s.m.addrErr(obj)
	}
	if idx < 0 || idx >= o.n {
		return 0, fmt.Errorf("sim: index %d out of range for %q (len %d)", idx, obj, o.n)
	}
	return o.base + idx*o.elemBytes, nil
}

func (s *simMemory) ElemBytes(obj string) (int, error) {
	if o := s.resolve(obj); o != nil {
		return int(o.elemBytes), nil
	}
	return 0, fmt.Errorf("sim: undeclared object %q", obj)
}

// clusterFetcher adapts the hierarchy to accessunit.Fetcher, converting
// host-cycle latencies to base cycles. prefetchHalve models Fig. 14's
// software prefetching (latency of random loads largely hidden). The
// hierarchy/meter/histogram are the launch environment's: on a sharded
// launch they are the island's private view, so concurrent fetchers never
// share counters.
type clusterFetcher struct {
	hier          *cache.Hierarchy
	meter         *energy.Meter
	latH          *trace.Hist
	prefetchHalve bool
}

func (f clusterFetcher) Access(cluster int, addr int64, write bool, bytes int) int {
	lat, _ := f.hier.ClusterAccess(cluster, addr, write, bytes)
	if f.prefetchHalve && !write {
		lat = lat/2 + 1
		f.meter.Add(energy.CatAccel, f.meter.Table.PrefetchPJ)
	}
	f.latH.Observe(float64(lat))
	return lat * int(hostDiv)
}

func (f clusterFetcher) LineBytes() int { return 64 }

// privFetcher is the Mono-CA private cache in front of the L3 bus: probes
// an 8 KB cache before issuing a centralized access from the accel node.
type privFetcher struct {
	m    *machine
	priv *cache.Level
	node int
}

func newPrivFetcher(m *machine, kb, node int) (*privFetcher, error) {
	lvl, err := cache.NewLevel(cache.LevelConfig{
		Name: "priv", SizeBytes: kb << 10, Ways: 4, LineBytes: 64,
		Latency: 2, EnergyPJ: m.meter.Table.L1AccessPJ, EnergyCat: energy.CatAccel,
	}, m.meter)
	if err != nil {
		return nil, err
	}
	return &privFetcher{m: m, priv: lvl, node: node}, nil
}

func (f *privFetcher) Access(cluster int, addr int64, write bool, bytes int) int {
	lat := f.priv.Latency()
	if f.priv.Access(addr, write) {
		return lat * int(hostDiv)
	}
	l3lat, _ := f.m.hier.ClusterAccess(f.node, addr, write, bytes)
	lat += l3lat
	if ev, dirty, ok := f.priv.Insert(addr, write); ok && dirty {
		f.m.hier.ClusterAccess(f.node, ev, true, 64)
	}
	return lat * int(hostDiv)
}

func (f *privFetcher) LineBytes() int { return 64 }

// dramFetcher is the §VII off-chip extension path: an accelerator placed
// at the memory controller reads and writes DRAM lines directly, paying
// device latency but no NoC traversal and no L3 occupancy. The memory is
// the launch environment's (an island-private counter view when sharded).
type dramFetcher struct{ dmem *dram.Memory }

func (f dramFetcher) Access(cluster int, addr int64, write bool, bytes int) int {
	return f.dmem.AccessAt(addr, write) * int(hostDiv)
}

func (f dramFetcher) LineBytes() int { return 64 }

// profileDRAMChannels is the channel fan-out used for per-channel DRAM
// attribution: pages interleave across four channels (observational only —
// the timing model keeps its single aggregate latency).
const profileDRAMChannels = 4

// newBuffer creates and tracks a decoupling buffer against the launch
// environment's meter and profiler, attaching an occupancy histogram when
// profiling is on. Buffer names stay global (machine-ordered) so sharded
// and serial runs produce identical queue identities.
func (m *machine) newBuffer(env *launchEnv) (*accessunit.Buffer, error) {
	b, err := accessunit.NewBuffer(m.cfg.BufElems, env.meter)
	if err != nil {
		return nil, err
	}
	b.Occ = env.prof.Queue("buffer", fmt.Sprintf("buf%d", len(m.buffers))) // nil on nil profiler
	m.buffers = append(m.buffers, b)
	return b, nil
}

// intraBytes sums buffer-internal traffic (Fig. 9 "intra").
func (m *machine) intraBytes() int64 {
	var t int64
	for _, b := range m.buffers {
		t += (b.Pushes + b.Pops) * 8
	}
	return t
}
