package sim

import (
	"fmt"

	"distda/internal/noc"
)

// snapshotMetrics folds the machine's end-of-run counters into the run's
// metrics registry. Assembly-time handles (latency histograms, combining
// counters) have already been recording; this adds the aggregate component
// counters so the rendered table is a complete per-component picture.
// Called once per run from collect; a nil registry makes every call a
// no-op.
func (m *machine) snapshotMetrics(res *Result) {
	met := m.met
	if met == nil {
		return
	}

	met.Counter("sim/launches").Add(m.launches)
	met.Gauge("sim/cycles").Set(float64(res.Cycles))

	met.Counter("host/instr").Add(m.hostInstr)
	met.Counter("host/loads").Add(m.hostLoads)
	met.Counter("host/stores").Add(m.hostStores)
	met.Counter("host/mmio").Add(res.MMIOHost)
	met.Gauge("host/slot_cycles").Set(m.slotCycles)
	met.Gauge("host/mem_stall_cycles").Set(m.memCycles)

	met.Counter("accel/ops").Add(m.accelOps)
	met.Counter("accel/mem_elems").Add(m.accelMemElem)
	met.Counter("accel/base_cycles").Add(m.accelBase)

	l1, l2, l3 := m.hier.Levels()
	met.Counter("cache/l1_hits").Add(l1.Hits)
	met.Counter("cache/l1_misses").Add(l1.Misses)
	met.Counter("cache/l2_hits").Add(l2.Hits)
	met.Counter("cache/l2_misses").Add(l2.Misses)
	var h3, m3 int64
	for _, lvl := range l3 {
		h3 += lvl.Hits
		m3 += lvl.Misses
	}
	met.Counter("cache/l3_hits").Add(h3)
	met.Counter("cache/l3_misses").Add(m3)
	met.Counter("cache/prefetch_issued").Add(m.hier.PrefetchIssued)
	met.Counter("cache/prefetch_useful").Add(m.hier.PrefetchUseful)

	met.Counter("dram/accesses").Add(m.dmem.Accesses)
	met.Counter("dram/reads").Add(m.dmem.Reads)
	met.Counter("dram/writes").Add(m.dmem.Writes)

	for _, c := range noc.Classes() {
		met.Counter(fmt.Sprintf("noc/%s_bytes", c)).Add(m.mesh.Bytes[c])
		met.Counter(fmt.Sprintf("noc/%s_messages", c)).Add(m.mesh.Messages[c])
		met.Counter(fmt.Sprintf("noc/%s_flit_hops", c)).Add(m.mesh.FlitHops[c])
	}

	met.Counter("au/da_bytes").Add(m.austats.DABytes)
	met.Counter("au/aa_bytes").Add(m.austats.AABytes)
	met.Counter("au/intra_bytes").Add(m.austats.IntraBytes)

	met.Gauge("energy/total_pj").Set(res.EnergyPJ)
	for cat, pj := range res.EnergyByCat {
		met.Gauge("energy/" + cat + "_pj").Set(pj)
	}
}
