package sim

import (
	"testing"

	"distda/internal/workloads"
)

// TestOffChipExtension exercises the §VII extension: with near-memory
// placement enabled, partitions anchored at DRAM-resident objects move to
// the memory controller. Results stay correct and on-chip NoC data traffic
// drops for a large streaming workload.
func TestOffChipExtension(t *testing.T) {
	w := workloads.Pathfinder(workloads.ScaleBench) // 3 MB wall object
	on, err := Run(w.Kernel, w.Params, w.NewData(), DistDAIO())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DistDAOffChip()
	off, err := Run(w.Kernel, w.Params, w.NewData(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !off.Validated {
		t.Fatal("off-chip run not validated")
	}
	onNoC := on.NoCBytes["data"] + on.NoCBytes["ctrl"]
	offNoC := off.NoCBytes["data"] + off.NoCBytes["ctrl"]
	if offNoC >= onNoC {
		t.Fatalf("off-chip placement did not reduce on-chip traffic: %d vs %d", offNoC, onNoC)
	}
	// L3 is no longer polluted by the big stream.
	if off.CacheL3 >= on.CacheL3 {
		t.Fatalf("off-chip L3 accesses %d not below on-chip %d", off.CacheL3, on.CacheL3)
	}
}

// TestOffChipLeavesSmallObjectsOnChip checks the threshold: kernels whose
// objects fit on chip are unaffected by the flag.
func TestOffChipLeavesSmallObjectsOnChip(t *testing.T) {
	k, params, gen := vecAddKernel(2048) // 16 KB objects
	on, err := Run(k, params, gen(), DistDAIO())
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(k, params, gen(), DistDAOffChip())
	if err != nil {
		t.Fatal(err)
	}
	if on.DRAM != off.DRAM {
		t.Fatalf("DRAM accesses changed for on-chip working set: %d vs %d", on.DRAM, off.DRAM)
	}
}
