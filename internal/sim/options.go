package sim

import (
	"errors"
	"fmt"
	"strings"

	"distda/internal/backend"
	"distda/internal/compiler"
	"distda/internal/engine"
	"distda/internal/engine/shard"
	"distda/internal/ir"
	"distda/internal/profile"
	"distda/internal/trace"
)

// ErrCanceled is returned (wrapped) by Run and friends when the run was
// interrupted through Config.Cancel before completion. Callers distinguish
// it from simulation errors with errors.Is; the experiment runner maps it to
// a degraded ("n/a") cell instead of aborting the whole matrix.
var ErrCanceled = errors.New("sim: run canceled")

// Option mutates a Config under construction. Options compose left to
// right; the last write to a field wins. Use NewConfig (or MustConfig) to
// apply them — both validate the final configuration, which is how nonsense
// combinations (Centralized+Distribute, out-of-range clocks, ...) are
// rejected at construction time instead of deep inside the simulator.
type Option func(*Config)

// NewConfig builds a configuration from a base constructor plus options and
// validates it:
//
//	cfg, err := sim.NewConfig(sim.DistDAIO,
//	        sim.WithBufElems(256),
//	        sim.WithTrace(tr))
//
// Any named constructor (OoO, MonoCA, DistDAF, ...) or Base itself can seed
// the build. A nil option is ignored.
func NewConfig(base func() Config, opts ...Option) (Config, error) {
	c := base()
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	if err := c.Validate(); err != nil {
		var zero Config
		return zero, err
	}
	return c, nil
}

// MustConfig is NewConfig panicking on validation errors. It is meant for
// statically known-good combinations (the named constructors use it).
func MustConfig(base func() Config, opts ...Option) Config {
	c, err := NewConfig(base, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate rejects configurations that no assembled machine can honor. The
// named constructors always validate; hand-tuned configurations should be
// built with NewConfig so mistakes surface before a simulation starts.
func (c Config) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("sim: config %q: "+format, append([]any{c.Name}, args...)...)
	}
	if c.Name == "" {
		return errors.New("sim: config has no name")
	}
	if c.Centralized && c.Distribute {
		return fail("Centralized (Mono-CA) and Distribute (Dist-DA) are mutually exclusive")
	}
	if !c.HasAccel() {
		if c.Distribute {
			return fail("Distribute requires an accelerator backend")
		}
		if c.Centralized {
			return fail("Centralized accesses require an accelerator backend")
		}
		if c.AccelGHz != 0 {
			return fail("AccelGHz %d set without an accelerator backend", c.AccelGHz)
		}
		if len(c.BackendOpts) > 0 {
			return fail("backend options set without an accelerator backend")
		}
		if c.PIMThreshold != 0 {
			return fail("PIMThreshold set without an accelerator backend")
		}
	} else {
		be, ok := backend.Lookup(c.Backend)
		if !ok {
			return fail("unknown accelerator backend %q (registered: %s)",
				c.Backend, strings.Join(backend.Names(), ", "))
		}
		if err := be.ValidateOptions(c.BackendOpts); err != nil {
			return fail("%v", err)
		}
		if c.AccelGHz < 1 || c.AccelGHz > 3 {
			return fail("AccelGHz %d outside the modeled 1-3 GHz range", c.AccelGHz)
		}
		if c.IOWidth < 1 {
			return fail("request port width %d < 1", c.IOWidth)
		}
		if w := be.Caps().MaxPortWidth; c.IOWidth > w {
			return fail("request port width %d exceeds backend %q maximum %d", c.IOWidth, c.Backend, w)
		}
		if c.PIMThreshold != 0 {
			if c.PIMThreshold < 0 {
				return fail("PIMThreshold %d negative", c.PIMThreshold)
			}
			if _, ok := backend.Lookup("pimdram"); !ok {
				return fail("PIMThreshold set but no \"pimdram\" backend registered")
			}
		}
	}
	if c.Centralized && c.Backend != "iocore" {
		return fail("Mono-CA centralized accesses are modeled on the in-order backend only")
	}
	if c.BufElems <= 0 {
		return fail("BufElems %d must be positive", c.BufElems)
	}
	if c.Combining && c.CombineWindow <= 0 {
		return fail("Combining enabled with non-positive window %d", c.CombineWindow)
	}
	if c.CombineWindow < 0 {
		return fail("CombineWindow %d negative", c.CombineWindow)
	}
	if c.MaxEngine <= 0 {
		return fail("MaxEngine %d must be positive", c.MaxEngine)
	}
	if c.PrivCacheKB < 0 {
		return fail("PrivCacheKB %d negative", c.PrivCacheKB)
	}
	if c.Threads < 0 {
		return fail("Threads %d negative", c.Threads)
	}
	if c.HostPrefDeg < 0 {
		return fail("HostPrefDeg %d negative", c.HostPrefDeg)
	}
	if c.OffChip && c.OffChipThreshold <= 0 {
		return fail("OffChip placement with non-positive threshold %d", c.OffChipThreshold)
	}
	if c.Shards < 0 {
		return fail("Shards %d negative", c.Shards)
	}
	return nil
}

// WithName replaces the configuration's display name.
func WithName(name string) Option { return func(c *Config) { c.Name = name } }

// WithBackend selects the registered accelerator backend executing
// offloaded regions, plus any backend-scoped options:
//
//	sim.WithBackend("cgra", backend.Opt("grid", "5x5"))
//
// It replaces any backend options set so far. An empty name restores the
// accelerator-free OoO baseline.
func WithBackend(name string, opts ...backend.Option) Option {
	return func(c *Config) {
		c.Backend = name
		c.BackendOpts = backend.Options(opts)
	}
}

// WithPIMThreshold enables per-region PIM-in-DRAM selection: offloaded
// regions whose summed object footprint is at least threshold bytes are
// steered to the "pimdram" backend instead of Config.Backend.
func WithPIMThreshold(threshold int) Option {
	return func(c *Config) { c.PIMThreshold = threshold }
}

// WithDistribute toggles distributed computation (Dist-DA).
func WithDistribute(on bool) Option { return func(c *Config) { c.Distribute = on } }

// WithCentralized toggles Mono-CA centralized accesses.
func WithCentralized(on bool) Option { return func(c *Config) { c.Centralized = on } }

// WithAccelGHz sets the accelerator clock (modeled range 1-3).
func WithAccelGHz(ghz int) Option { return func(c *Config) { c.AccelGHz = ghz } }

// WithBufElems sets the per-buffer decoupling window, in elements.
func WithBufElems(n int) Option { return func(c *Config) { c.BufElems = n } }

// WithCombineWindow sets the multi-access combining window, in elements.
func WithCombineWindow(n int64) Option { return func(c *Config) { c.CombineWindow = n } }

// WithCombining toggles Fig. 2d runtime combining.
func WithCombining(on bool) Option { return func(c *Config) { c.Combining = on } }

// WithHostPrefetch toggles the host L2 stride prefetcher.
func WithHostPrefetch(on bool) Option { return func(c *Config) { c.HostPrefetch = on } }

// WithHostPrefDeg sets the host prefetcher degree.
func WithHostPrefDeg(deg int) Option { return func(c *Config) { c.HostPrefDeg = deg } }

// WithIOWidth sets the in-order issue width (Fig. 14 +SW uses 4).
func WithIOWidth(w int) Option { return func(c *Config) { c.IOWidth = w } }

// WithSWPrefetch toggles software prefetch for accelerator random loads.
func WithSWPrefetch(on bool) Option { return func(c *Config) { c.SWPrefetch = on } }

// WithAllocSpread toggles Fig. 14 +A allocation customization.
func WithAllocSpread(on bool) Option { return func(c *Config) { c.AllocSpread = on } }

// WithoutStreamSpecialization lowers affine accesses as random accesses
// (§VI-D multithreading case study).
func WithoutStreamSpecialization() Option { return func(c *Config) { c.NoStreams = true } }

// WithoutEpilogueFold keeps epilogue stores on the host (Dist-DA-B).
func WithoutEpilogueFold() Option { return func(c *Config) { c.NoFolding = true } }

// WithOffChip enables §VII off-chip placement for objects larger than
// threshold bytes.
func WithOffChip(threshold int) Option {
	return func(c *Config) {
		c.OffChip = true
		c.OffChipThreshold = threshold
	}
}

// WithCompilerMode selects the compute-distribution lowering.
func WithCompilerMode(m compiler.Mode) Option { return func(c *Config) { c.CompilerMode = m } }

// WithMaxEngine caps the engine budget per launch, in base cycles.
func WithMaxEngine(n int64) Option { return func(c *Config) { c.MaxEngine = n } }

// WithPrivCacheKB sets the Mono-CA private cache size (0 = none).
func WithPrivCacheKB(kb int) Option { return func(c *Config) { c.PrivCacheKB = kb } }

// WithoutObjConstraint drops the ≤1-object-per-partition preference
// (ablation).
func WithoutObjConstraint() Option { return func(c *Config) { c.NoObjConstr = true } }

// WithPlaceAtHost ignores placement hints, keeping accelerators at the host
// tile (ablation).
func WithPlaceAtHost() Option { return func(c *Config) { c.PlaceAtHost = true } }

// WithThreads sets the software thread count for parallel-annotated loops.
func WithThreads(n int) Option { return func(c *Config) { c.Threads = n } }

// WithValidation toggles the per-run comparison against the reference
// interpreter.
func WithValidation(on bool) Option { return func(c *Config) { c.ValidateEvery = on } }

// WithTrace attaches a cycle-accurate tracer (observational only).
func WithTrace(tr *trace.Tracer) Option { return func(c *Config) { c.Trace = tr } }

// WithMetrics attaches a metrics registry (observational only).
func WithMetrics(m *trace.Metrics) Option { return func(c *Config) { c.Metrics = m } }

// WithProfile attaches a cycle/energy attribution profiler (observational
// only).
func WithProfile(p *profile.Profiler) Option { return func(c *Config) { c.Profile = p } }

// WithShards lets each offload launch execute across up to n goroutines
// (intra-run sharding). Results are bit-identical to serial at any shard
// count; 0 or 1 means serial.
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// WithShardStats attaches a wall-clock shard attribution collector
// (observational only): every sharded launch accumulates per-island
// busy/barrier-wait time, window counts and idle fast-forwards into st.
func WithShardStats(st *shard.Stats) Option { return func(c *Config) { c.ShardStats = st } }

// WithNaiveEngine selects the reference one-tick-at-a-time scheduler.
func WithNaiveEngine() Option { return func(c *Config) { c.NaiveEngine = true } }

// WithEngineMode selects the engine scheduling strategy (adaptive, event,
// naive). Results are bit-identical across modes; this picks the
// wall-clock/perf trade-off.
func WithEngineMode(m engine.Mode) Option { return func(c *Config) { c.EngineMode = m } }

// WithProgram supplies a pre-compiled bytecode program for reference
// validation, typically fetched from the artifact cache. A nil or
// mismatched program is ignored (the run falls back to the process-wide
// program cache).
func WithProgram(p *ir.Program) Option { return func(c *Config) { c.Program = p } }

// WithCancel attaches a cancellation channel: when it closes, the run stops
// at the next host loop boundary and returns an error wrapping ErrCanceled.
// This is how the experiment runner enforces per-cell deadlines
// (context.Context.Done plugs in directly).
func WithCancel(done <-chan struct{}) Option { return func(c *Config) { c.Cancel = done } }
