package sim

import (
	"fmt"
	"testing"

	"distda/internal/engine"
	"distda/internal/workloads"
)

// TestPIMDRAMRuns executes every workload on the PIM-in-DRAM backend under
// all three engine scheduling modes: results must validate against the
// reference interpreter and be bit-identical across modes — the same
// contract the near-L3 backends honor.
func TestPIMDRAMRuns(t *testing.T) {
	for _, w := range workloads.All(workloads.ScaleTest) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			data := w.NewData()
			var first *Result
			for _, mode := range []engine.Mode{engine.ModeAdaptive, engine.ModeEvent, engine.ModeNaive} {
				cfg := DistDAPIM()
				cfg.EngineMode = mode
				r, err := Run(w.Kernel, w.Params, copyData(data), cfg)
				if err != nil {
					t.Fatalf("%s (%s): %v", w.Name, mode, err)
				}
				if !r.Validated {
					t.Fatalf("%s (%s): result not validated", w.Name, mode)
				}
				if first == nil {
					first = r
					continue
				}
				if fmt.Sprintf("%+v", r) != fmt.Sprintf("%+v", first) {
					t.Fatalf("%s: %s mode diverges from adaptive", w.Name, mode)
				}
			}
		})
	}
}

// TestPIMThresholdSteersRegions checks per-region backend selection: with a
// low threshold on a near-L3 config, large-footprint regions execute in
// DRAM (the compiler marks them), and the run still validates.
func TestPIMThresholdSteersRegions(t *testing.T) {
	w, err := workloads.ByName("fdtd-2d", workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MustConfig(DistDAIO, WithName("Dist-DA-IO+PIM"), WithPIMThreshold(1))
	compiled, err := Compiled(w.Kernel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	marked := 0
	for _, reg := range compiled.Regions {
		if reg.Backend == "pimdram" {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("threshold 1: no region steered to pimdram")
	}
	r, err := Run(w.Kernel, w.Params, w.NewData(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Validated {
		t.Fatal("mixed-backend run not validated")
	}

	// A threshold beyond every footprint must leave all regions on the
	// config backend.
	huge := MustConfig(DistDAIO, WithName("Dist-DA-IO+PIMHuge"), WithPIMThreshold(1<<40))
	compiled, err = Compiled(w.Kernel, huge)
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range compiled.Regions {
		if reg.Backend != "" {
			t.Fatalf("threshold 1<<40: region %s unexpectedly steered to %q", reg.Name, reg.Backend)
		}
	}
}
