package sim

import (
	"fmt"

	"distda/internal/energy"
)

// snapshotProfile folds the machine's end-of-run state into the attached
// profiler: per-component busy/stall cycles (in engine base cycles, so
// every component shares one denominator), event counts and the energy
// meter's per-category joules. Purely observational — called once from
// collect, after every counter is final. No-op when no profiler is
// attached.
func (m *machine) snapshotProfile(res *Result) {
	p := m.prof
	if p == nil {
		return
	}
	totalBase := res.Cycles * hostDiv
	p.AddRun(totalBase)

	// Host pipeline: issue slots are useful work, memory stalls are stalls.
	host := p.Component("host", "cpu")
	host.AddBusy(int64(m.slotCycles) * hostDiv)
	host.AddStall(int64(m.memCycles) * hostDiv)
	host.AddEvents(m.hostInstr)
	host.AddEnergy(m.meter.Get(energy.CatHost))

	// Cache levels: occupancy approximated as accesses × level latency.
	l1, l2, l3 := m.hier.Levels()
	cl1 := p.Component("cache", "l1")
	cl1.AddBusy(l1.Accesses * int64(l1.Latency()) * hostDiv)
	cl1.AddEvents(l1.Accesses)
	cl1.AddEnergy(m.meter.Get(energy.CatL1))
	cl2 := p.Component("cache", "l2")
	cl2.AddBusy(l2.Accesses * int64(l2.Latency()) * hostDiv)
	cl2.AddEvents(l2.Accesses)
	cl2.AddEnergy(m.meter.Get(energy.CatL2))
	var l3Energy = m.meter.Get(energy.CatL3)
	var l3Total int64
	for _, lvl := range l3 {
		l3Total += lvl.Accesses
	}
	for i, lvl := range l3 {
		c := p.Component("cache", fmt.Sprintf("l3.cluster%d", i))
		c.AddBusy(lvl.Accesses * int64(lvl.Latency()) * hostDiv)
		c.AddEvents(lvl.Accesses)
		if l3Total > 0 {
			c.AddEnergy(l3Energy * float64(lvl.Accesses) / float64(l3Total))
		}
	}

	// DRAM channels: the device keeps one aggregate latency; attribution
	// splits accesses (and energy, proportionally) across channels.
	chans := m.dmem.ChannelAccesses()
	dramEnergy := m.meter.Get(energy.CatDRAM)
	perAccessPJ := 0.0
	if m.dmem.Accesses > 0 {
		perAccessPJ = dramEnergy / float64(m.dmem.Accesses)
	}
	for i, acc := range chans {
		if acc == 0 {
			continue
		}
		c := p.Component("dram", fmt.Sprintf("chan%d", i))
		c.AddBusy(acc * int64(m.dmem.LatencyCycles()) * hostDiv)
		c.AddEvents(acc)
		c.AddEnergy(perAccessPJ * float64(acc))
	}

	// NoC links: flit-hops × per-hop latency, energy per flit-hop.
	flitHopPJ := m.meter.Table.NoCFlitHopPJ
	m.mesh.VisitLinks(func(from, to int, flits int64) {
		c := p.Component("noc_link", m.mesh.LinkName(from, to))
		c.AddBusy(flits * 2 * hostDiv) // noc.DefaultConfig HopCycles
		c.AddEvents(flits)
		c.AddEnergy(float64(flits) * flitHopPJ)
	})

	// Access-unit buffers: one event per push/pop, each a single-cycle SRAM
	// touch at the 2 GHz access-unit clock.
	var bufEvents int64
	for _, b := range m.buffers {
		bufEvents += b.Pushes + b.Pops
	}
	au := p.Component("au", "buffers")
	au.AddBusy(bufEvents * hostDiv)
	au.AddEvents(bufEvents)
	au.AddEnergy(m.meter.Get(energy.CatBuffer))

	// MMIO controller and the accelerator substrate's aggregate energy (the
	// per-core/fabric components carry cycles; the meter only keeps one
	// accel category).
	mmio := p.Component("mmio", "ctrl")
	mmio.AddEvents(res.MMIOHost)
	mmio.AddEnergy(m.meter.Get(energy.CatMMIO))
	accel := p.Component("accel", "all")
	accel.AddBusy(m.accelBase)
	accel.AddEvents(m.accelOps)
	accel.AddEnergy(m.meter.Get(energy.CatAccel))

	// Engine scheduler effectiveness: fast-forward jumps and the base
	// cycles they skipped (events = jumps, stall = skipped-over cycles).
	sched := p.Component("engine", "scheduler")
	sched.AddBusy(m.accelBase)
	sched.AddEvents(m.ffJumps)
	sched.AddStall(m.ffSkipped)

	// Fold the tracer's spans (when both are attached) so stats.txt carries
	// the span aggregates next to the component attribution.
	p.AbsorbTrace(m.tr)
}
