package sim

import (
	"bytes"
	"reflect"
	"testing"

	"distda/internal/profile"
	"distda/internal/workloads"
)

// TestProfilerDifferential runs every workload under every paper
// configuration twice — once with profiling off (nil *profile.Profiler) and
// once with it on — and requires bit-identical results. Profiling is
// observational only: it may read the machine's counters and walk NoC routes
// and DRAM channel maps, but it must never perturb a cycle count, an energy
// figure, or a validation outcome.
func TestProfilerDifferential(t *testing.T) {
	ws := workloads.All(workloads.ScaleTest)
	ws = append(ws, workloads.SpMV(workloads.ScaleTest))
	for _, w := range ws {
		data := w.NewData()
		for _, cfg := range AllPaperConfigs() {
			offCfg := cfg
			offCfg.Profile = nil
			offRes, offErr := Run(w.Kernel, w.Params, copyData(data), offCfg)
			onCfg := cfg
			onCfg.Profile = profile.New()
			onRes, onErr := Run(w.Kernel, w.Params, copyData(data), onCfg)
			if offErr != nil || onErr != nil {
				t.Fatalf("%s on %s: off err=%v on err=%v", w.Name, cfg.Name, offErr, onErr)
			}
			if !reflect.DeepEqual(offRes, onRes) {
				t.Errorf("%s on %s: results diverge with profiling on:\noff: %+v\non:  %+v",
					w.Name, cfg.Name, offRes, onRes)
			}
			// The profiled run must actually have attributed something for
			// accelerated configs — a silently dead profiler would also pass
			// the differential check.
			if cfg.HasAccel() && onRes.Launches > 0 {
				if len(onCfg.Profile.Regions()) == 0 {
					t.Errorf("%s on %s: profiler captured no regions despite %d launches",
						w.Name, cfg.Name, onRes.Launches)
				}
				if onCfg.Profile.TotalBase() == 0 {
					t.Errorf("%s on %s: profiler has zero total base cycles", w.Name, cfg.Name)
				}
			}
		}
	}
}

// TestProfilerDeterministicExports pins run-to-run determinism of the
// exports themselves: two identical profiled runs must produce
// byte-identical stats dumps and folded stacks.
func TestProfilerDeterministicExports(t *testing.T) {
	w := workloads.All(workloads.ScaleTest)[0]
	data := w.NewData()
	export := func() (string, string) {
		cfg := DistDAF()
		cfg.Profile = profile.New()
		if _, err := Run(w.Kernel, w.Params, copyData(data), cfg); err != nil {
			t.Fatal(err)
		}
		var stats, folded bytes.Buffer
		if err := cfg.Profile.WriteStats(&stats); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Profile.WriteFolded(&folded); err != nil {
			t.Fatal(err)
		}
		return stats.String(), folded.String()
	}
	s1, f1 := export()
	s2, f2 := export()
	if s1 != s2 {
		t.Errorf("stats dump differs between identical runs:\n--- first ---\n%s--- second ---\n%s", s1, s2)
	}
	if f1 != f2 {
		t.Errorf("folded stacks differ between identical runs:\n--- first ---\n%s--- second ---\n%s", f1, f2)
	}
	if len(f1) == 0 {
		t.Error("folded export empty for an accelerated run")
	}
}
