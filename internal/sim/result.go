package sim

import (
	"fmt"
	"math"

	"distda/internal/core"
)

// Result aggregates everything the evaluation section reports for one
// (workload, configuration) run.
type Result struct {
	Config   string
	Workload string

	Cycles int64 // host-clock (2 GHz) cycles

	EnergyPJ    float64
	EnergyByCat map[string]float64

	HostInstr int64
	AccelOps  int64
	MemOps    int64 // host loads/stores + accelerator stream elements/random ops

	CacheL1 int64
	CacheL2 int64
	CacheL3 int64
	DRAM    int64

	NoCBytes map[string]int64 // Fig. 10 classes

	DABytes    int64 // Fig. 9
	AABytes    int64
	IntraBytes int64

	DataMovedBytes int64

	MMIO       core.IntrinsicStats
	MMIOHost   int64 // host-initiated MMIO transactions (%init numerator)
	Launches   int64
	AvgBuffers float64

	Validated bool
}

// Instructions returns the combined dynamic instruction count.
func (r *Result) Instructions() int64 { return r.HostInstr + r.AccelOps }

// IPC returns instructions per host cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions()) / float64(r.Cycles)
}

// MemOpRate returns memory operations per host cycle (Fig. 11a).
func (r *Result) MemOpRate() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.MemOps) / float64(r.Cycles)
}

// EnergyEfficiencyVs returns base.Energy / r.Energy (higher is better).
func (r *Result) EnergyEfficiencyVs(base *Result) float64 {
	if r.EnergyPJ == 0 {
		return 0
	}
	return base.EnergyPJ / r.EnergyPJ
}

// SpeedupVs returns base.Cycles / r.Cycles.
func (r *Result) SpeedupVs(base *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// DataMovementReductionVs returns base.DataMoved / r.DataMoved.
func (r *Result) DataMovementReductionVs(base *Result) float64 {
	if r.DataMovedBytes == 0 {
		return 0
	}
	return float64(base.DataMovedBytes) / float64(r.DataMovedBytes)
}

// InitOverheadPct is Table VI's %init: host MMIO transactions as a fraction
// of all memory operations.
func (r *Result) InitOverheadPct() float64 {
	if r.MemOps == 0 {
		return 0
	}
	return 100 * float64(r.MMIOHost) / float64(r.MemOps)
}

// collect builds the Result from the machine's counters.
func (m *machine) collect(workload string, validated bool) *Result {
	l1, l2, l3 := m.hier.CacheAccesses()
	m.austats.IntraBytes += m.intraBytes()
	res := &Result{
		Config:   m.cfg.Name,
		Workload: workload,
		Cycles:   m.hostCycles(),

		EnergyPJ:    m.meter.TotalPJ(),
		EnergyByCat: map[string]float64{},

		HostInstr: m.hostInstr,
		AccelOps:  m.accelOps,
		MemOps:    m.hostLoads + m.hostStores + m.accelMemElem,

		CacheL1: l1,
		CacheL2: l2,
		CacheL3: l3,
		DRAM:    m.dmem.Accesses,

		NoCBytes: m.mesh.BytesByClass(),

		DABytes:    m.austats.DABytes,
		AABytes:    m.austats.AABytes,
		IntraBytes: m.austats.IntraBytes,

		MMIO:       m.mmio,
		Launches:   m.launches,
		AvgBuffers: m.alloc.AvgBuffers(),
		Validated:  validated,
	}
	for _, c := range m.meter.Categories() {
		res.EnergyByCat[c] = m.meter.Get(c)
	}
	for _, in := range []core.Intrinsic{core.CpConfig, core.CpConfigStream, core.CpConfigRandom,
		core.CpSetRF, core.CpLoadRF, core.CpRun} {
		res.MMIOHost += m.mmio[in]
	}
	// Data movement in bytes: every SRAM array read/write moves a line
	// (caches operate at line granularity), every buffer access moves a
	// word, plus everything crossing the NoC, the accelerator-bank
	// transfers, and DRAM line transfers. This is the quantity the paper's
	// byte-movement reduction compares: near-data execution replaces
	// line-granularity multi-level movement with word-granularity local
	// buffer traffic.
	line := int64(64)
	var bufAccesses int64
	for _, b := range m.buffers {
		bufAccesses += b.Pushes + b.Pops
	}
	res.DataMovedBytes = line*(l1+l2+l3) + line*m.dmem.Accesses +
		m.mesh.TotalBytes() + m.austats.DABytes + m.austats.AABytes +
		8*bufAccesses
	if m.priv != nil {
		res.DataMovedBytes += line * m.priv.priv.Accesses
	}
	m.snapshotMetrics(res)
	m.snapshotProfile(res)
	return res
}

// compareData checks simulated object contents against the reference
// interpreter's, with a small relative tolerance for floating-point
// reassociation (none is expected: both execute in loop order).
func compareData(got, want map[string][]float64) error {
	for name, w := range want {
		g, ok := got[name]
		if !ok || len(g) != len(w) {
			return fmt.Errorf("sim: object %q missing or mis-sized in simulated memory", name)
		}
		for i := range w {
			if g[i] == w[i] {
				continue
			}
			diff := math.Abs(g[i] - w[i])
			scale := math.Max(math.Abs(g[i]), math.Abs(w[i]))
			if diff > 1e-9*math.Max(scale, 1) {
				return fmt.Errorf("sim: object %q diverges at [%d]: got %g, want %g", name, i, g[i], w[i])
			}
		}
	}
	return nil
}
