package sim

import (
	"fmt"

	"distda/internal/compiler"
	"distda/internal/ir"
)

// Run executes kernel k with the given parameters and input data under one
// configuration. data is consumed (mutated); pass a fresh generation per
// run. The result is validated against the reference interpreter when the
// config requests it.
func Run(k *ir.Kernel, params map[string]float64, data map[string][]float64, cfg Config) (*Result, error) {
	return RunAnnotated(k, params, data, cfg, nil)
}

// RunAnnotated is Run with a user-annotation hook: after compilation the
// hook may attach hand-written offload regions to loops (the §VI-D
// "U"-marked rows of Table V), overriding or extending the automated
// mapping.
func RunAnnotated(k *ir.Kernel, params map[string]float64, data map[string][]float64, cfg Config,
	annotate func(*compiler.Compiled) error) (*Result, error) {
	var compiled *compiler.Compiled
	if cfg.HasAccel() {
		var err error
		compiled, err = Compiled(k, cfg)
		if err != nil {
			return nil, err
		}
		if annotate != nil {
			if err := annotate(compiled); err != nil {
				return nil, err
			}
		}
	}
	return RunPrecompiled(k, params, data, cfg, compiled)
}

// RunPrecompiled is Run with a previously compiled artifact, which must
// have been produced by Compiled(k, cfg) (or by an equivalent
// compiler.Compile of the same kernel with CompileOptions(cfg)). The
// simulator only reads the artifact, so one compilation may be shared
// across concurrent runs of configurations with the same compiler
// options — the experiment matrix memoizes on this. compiled is ignored
// for backend-less (OoO) configs.
func RunPrecompiled(k *ir.Kernel, params map[string]float64, data map[string][]float64, cfg Config,
	compiled *compiler.Compiled) (*Result, error) {
	if !cfg.HasAccel() {
		compiled = nil
	}
	var refData map[string][]float64
	if cfg.ValidateEvery {
		refData = copyData(data)
	}
	m, err := newMachine(cfg, k, params, data)
	if err != nil {
		return nil, err
	}
	h := newHost(m, compiled)
	if err := h.run(); err != nil {
		return nil, err
	}
	validated := false
	if cfg.ValidateEvery {
		// The reference run executes compiled bytecode rather than walking
		// the kernel tree; results are bit-identical (the ir differential
		// tests enforce it) and the hot validation path gets ~2x cheaper.
		prog := cfg.Program
		if prog == nil || prog.Kernel() != k {
			var perr error
			if prog, perr = ir.ProgramFor(k); perr != nil {
				return nil, fmt.Errorf("sim: reference run: %w", perr)
			}
		}
		if _, err := prog.Run(params, refData, nil); err != nil {
			return nil, fmt.Errorf("sim: reference run: %w", err)
		}
		if err := compareData(data, refData); err != nil {
			return nil, fmt.Errorf("sim: %s on %s: %w", k.Name, cfg.Name, err)
		}
		validated = true
	}
	return m.collect(k.Name, validated), nil
}

// CompileOptions returns the compiler options a config implies. Configs
// mapping to equal options compile identically, which the experiment
// matrix exploits to memoize compilation across configurations.
func CompileOptions(cfg Config) compiler.Options {
	return compiler.Options{
		Mode:                   cfg.CompilerMode,
		NoObjConstraint:        cfg.NoObjConstr,
		NoStreamSpecialization: cfg.NoStreams,
		NoEpilogueFold:         cfg.NoFolding,
		PIMBytes:               cfg.PIMThreshold,
	}
}

// Compiled exposes the compilation a config would use (for reports).
func Compiled(k *ir.Kernel, cfg Config) (*compiler.Compiled, error) {
	return compiler.Compile(k, CompileOptions(cfg))
}

func copyData(data map[string][]float64) map[string][]float64 {
	out := make(map[string][]float64, len(data))
	for k, v := range data {
		c := make([]float64, len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}

// RunThreads executes the kernel with its parallel-annotated loops chunked
// across the given number of software threads (§VI-D): chunks run over
// shared functional memory while the cycle account keeps only the slowest
// chunk per parallel-loop instance plus a barrier. A parallel loop that is
// itself innermost (bfs-mt's edge scan) is first strip-mined so each thread
// gets its own offloadable chunk loop.
func RunThreads(k *ir.Kernel, params map[string]float64, data map[string][]float64, cfg Config, threads int) (*Result, error) {
	cfg.Threads = threads
	return Run(ThreadKernel(k, threads), params, data, cfg)
}

// ThreadKernel returns the kernel RunThreads would execute with the given
// software thread count: for threads > 1 every parallel innermost loop is
// strip-mined into per-thread chunk loops (see stripMineParallelInnermost).
// Callers that compile through a content-addressed cache key on this kernel
// so thread variants hash distinctly.
func ThreadKernel(k *ir.Kernel, threads int) *ir.Kernel {
	if threads > 1 {
		return stripMineParallelInnermost(k, threads)
	}
	return k
}

// stripMineParallelInnermost rewrites every parallel innermost loop
//
//	parfor i = lo..hi { body }
//
// into
//
//	parfor __t = 0..T { for i = lo+__t*ch .. min(hi, lo+(__t+1)*ch) { body } }
//
// so the host's thread chunking operates on __t while each chunk's inner
// loop remains a compilable offload region.
func stripMineParallelInnermost(k *ir.Kernel, threads int) *ir.Kernel {
	inner := map[*ir.For]bool{}
	for _, f := range ir.InnermostLoops(k.Body) {
		if f.Parallel {
			inner[f] = true
		}
	}
	if len(inner) == 0 {
		return k
	}
	t := float64(threads)
	var rewrite func(ss []ir.Stmt) []ir.Stmt
	rewrite = func(ss []ir.Stmt) []ir.Stmt {
		out := make([]ir.Stmt, len(ss))
		for i, s := range ss {
			switch x := s.(type) {
			case *ir.For:
				if inner[x] {
					// chunk size ceil((hi-lo)/T) as an expression.
					span := ir.SubE(x.Hi, x.Lo)
					ch := ir.FloorE(ir.DivE(ir.AddE(span, ir.C(t-1)), ir.C(t)))
					lo := ir.AddE(x.Lo, ir.MulE(ir.V("__t"), ch))
					hi := ir.MinE(x.Hi, ir.AddE(x.Lo, ir.MulE(ir.AddE(ir.V("__t"), ir.C(1)), ch)))
					innerLoop := &ir.For{IV: x.IV, Lo: lo, Hi: hi, Step: x.Step, Body: x.Body}
					out[i] = &ir.For{IV: "__t", Lo: ir.C(0), Hi: ir.C(t), Step: ir.C(1),
						Parallel: true, Body: []ir.Stmt{innerLoop}}
					continue
				}
				out[i] = &ir.For{IV: x.IV, Lo: x.Lo, Hi: x.Hi, Step: x.Step,
					Parallel: x.Parallel, Body: rewrite(x.Body)}
			case ir.If:
				out[i] = ir.If{Cond: x.Cond, Then: rewrite(x.Then), Else: rewrite(x.Else)}
			default:
				out[i] = s
			}
		}
		return out
	}
	return &ir.Kernel{Name: k.Name, Params: k.Params, Objects: k.Objects, Body: rewrite(k.Body)}
}
