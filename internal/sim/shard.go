package sim

import (
	"strconv"

	"distda/internal/accessunit"
	"distda/internal/cache"
	"distda/internal/core"
	"distda/internal/dram"
	"distda/internal/energy"
	"distda/internal/engine"
	"distda/internal/engine/shard"
	"distda/internal/noc"
	"distda/internal/profile"
	"distda/internal/trace"
)

// This file is the simulator half of intra-run sharding (the mechanism half
// lives in internal/engine/shard). One offload launch is partitioned by the
// NUCA resources its accelerators may touch — L3 home clusters in
// ClusterSpan granules, channel peerings — into islands that share no
// mutable state. Each island's components are assembled against a private
// launchEnv (its own engine, energy meter, NoC/DRAM counter views,
// access-unit stats, metrics registry and profiler) and the islands run on
// a fixed worker pool. Afterwards everything merges back canonically:
//
//   - Integer counters (NoC, DRAM, access-unit, cache slices) are
//     commutative sums, folded in island order.
//   - Energy is float accumulation, which is NOT commutative in the low
//     bits; island meters therefore record (cycle, component)-stamped
//     event logs that ReplayMerge replays into the run meter in the exact
//     interleaving a serial engine would have produced.
//   - Elapsed base cycles are the max over islands, which equals the
//     serial engine's elapsed count because disjoint islands never delay
//     each other.
//
// The net effect: results are bit-identical to a serial run at any shard
// count (the differential, golden, permutation and fuzz tests enforce it).
// Cross-island messaging never arises here — islands are defined by
// claim-disjointness, the degenerate (unbounded-lookahead) case of the
// shard package's conservative time-window protocol; coupled shards are
// exercised through shard.Graph in that package's own tests.

// launchEnv names the run-time resources one island's components are wired
// to during launch assembly. The serial environment aliases the machine's
// own resources; island environments carry private views so concurrent
// islands never share a mutable word.
type launchEnv struct {
	m           *machine
	island      int // index among the launch's islands (0 in the serial env)
	eng         *engine.Engine
	meter       *energy.Meter
	elog        *energy.Log // nil in the serial environment
	mesh        *noc.Mesh
	dmem        *dram.Memory
	hier        *cache.Hierarchy
	austats     *accessunit.Stats
	met         *trace.Metrics
	prof        *profile.Profiler
	clusterLatH *trace.Hist
	nextComp    *int32 // launch-wide component id counter (sharded only)
}

// serialEnv returns the environment aliasing the machine's global
// resources — assembly against it is exactly the pre-sharding behavior.
func (m *machine) serialEnv(eng *engine.Engine) *launchEnv {
	return &launchEnv{
		m: m, eng: eng, meter: m.meter, mesh: m.mesh, dmem: m.dmem,
		hier: m.hier, austats: m.austats, met: m.met, prof: m.prof,
		clusterLatH: m.clusterLatH,
	}
}

// newIslandEnv builds one island's private environment: a fresh engine, a
// logging meter (every Add is recorded as a stamped event, never
// accumulated), private NoC/DRAM counter views, and — when the run has
// them — a private metrics registry and profiler to merge back later.
func (m *machine) newIslandEnv(nextComp *int32) *launchEnv {
	meter := energy.NewMeter(m.meter.Table)
	elog := &energy.Log{}
	if n := len(m.logFree); n > 0 {
		elog = m.logFree[n-1]
		m.logFree = m.logFree[:n-1]
	}
	meter.StartLog(elog)
	mesh := noc.New(noc.DefaultConfig(), meter)
	dmem := dram.NewMemory(dram.DefaultConfig(), meter)
	env := &launchEnv{
		m: m, eng: engine.New(), meter: meter, elog: elog, mesh: mesh,
		dmem: dmem, hier: m.hier.ShardView(mesh, dmem),
		austats: &accessunit.Stats{}, nextComp: nextComp,
	}
	env.eng.Mode = m.cfg.EngineMode
	if m.cfg.NaiveEngine {
		env.eng.Mode = engine.ModeNaive
	}
	env.eng.CollectFF = m.prof != nil
	if m.met != nil {
		env.met = trace.NewMetrics()
	}
	env.clusterLatH = env.met.Histogram("cache/cluster_access_lat")
	if m.prof != nil {
		env.prof = profile.New()
		mesh.EnableLinkProfile()
		dmem.EnableChannelProfile(profileDRAMChannels)
	}
	return env
}

// add registers a component with the environment's engine. On an island the
// component is wrapped so every energy Add during its Step is stamped with
// (base cycle, launch-wide registration id) — the key ReplayMerge later
// sorts by to reproduce the serial accumulation order.
func (env *launchEnv) add(c engine.Component, ghz int) {
	if env.elog == nil {
		env.eng.Add(c, ghz)
		return
	}
	s := &stamped{c: c, comp: *env.nextComp, log: env.elog}
	*env.nextComp++
	if hnt, ok := c.(engine.Hinter); ok {
		s.hint = hnt
	}
	env.eng.Add(s, ghz)
}

// stamped wraps an island's component to keep the island energy log's
// (cycle, component) stamp current across the wrapped Step. It always
// implements Hinter: forwarding a missing hint as claim 0 ("poll me") is
// exactly what the engine does for a hint-less component, so scheduling is
// unchanged.
type stamped struct {
	c    engine.Component
	hint engine.Hinter // nil when c does not hint
	comp int32
	log  *energy.Log
}

func (s *stamped) Step(now int64) bool {
	s.log.Cycle, s.log.Comp = now, s.comp
	return s.c.Step(now)
}

func (s *stamped) Done() bool { return s.c.Done() }

func (s *stamped) NextEvent(now int64) int64 {
	if s.hint == nil {
		return 0
	}
	return s.hint.NextEvent(now)
}

// planShards partitions a launch's accelerators into islands by the
// resources each may touch during the engine run. Claims are conservative:
//
//   - On-chip accesses claim the home-cluster granules of their evaluated
//     address window exclusively (cache state — tags, LRU, counters —
//     mutates on reads too), padded by a cache line on both ends and by
//     the combining window, which bounds how far a combined fill FSM
//     reads past an individual accessor's window.
//   - All accesses additionally claim the data bytes they touch in 4 KiB
//     pages (the slab's object alignment, so two objects never share a
//     page): reads share, writes are exclusive. This is what lets
//     off-chip (PIM) accelerators reading a common object still split —
//     they touch no cache state, only immutable bytes and their island's
//     private DRAM counters.
//   - Prefill objects and any micro-program op naming an object claim the
//     object's whole range as written — random ports may touch any
//     element.
//
// Channel endpoints claim nothing: the split link halves interact only
// through latency-stamped wires, which the windowed coordinator carries
// across islands. Accelerators sharing any claimed token land in one
// island. The second return value lists each island's claimed clusters,
// whose L3 slice meters the sharded run temporarily redirects.
func (h *host) planShards(rts []*accelRT) (islands [][]int, clusters [][]int) {
	m := h.m
	p := shard.NewPartition(len(rts))
	span := m.hier.ClusterSpan()
	nclusters := m.hier.Clusters()
	unitClusters := make([]map[int]bool, len(rts))
	for i := range unitClusters {
		unitClusters[i] = map[int]bool{}
	}
	claimClusters := func(u int, lo, hi int64) {
		lo -= 64
		hi += 64
		if lo < 0 {
			lo = 0
		}
		if hi <= lo {
			hi = lo + 1
		}
		if hi-lo >= span*int64(nclusters) {
			for c := 0; c < nclusters; c++ {
				p.Claim(u, clusterToken(c))
				unitClusters[u][c] = true
			}
			return
		}
		for a := lo - lo%span; a < hi; a += span {
			c := m.hier.HomeCluster(a)
			p.Claim(u, clusterToken(c))
			unitClusters[u][c] = true
		}
	}
	const page = int64(4096)
	claimPages := func(u int, lo, hi int64, write bool) {
		if lo < 0 {
			lo = 0
		}
		if hi <= lo {
			hi = lo + 1
		}
		for a := lo - lo%page; a < hi; a += page {
			if write {
				p.Claim(u, pageToken(a/page))
			} else {
				p.ClaimRead(u, pageToken(a/page))
			}
		}
	}
	claimData := func(u int, rt *accelRT, lo, hi int64, write bool) {
		if !rt.offChip {
			claimClusters(u, lo, hi)
		}
		claimPages(u, lo, hi, write)
	}
	claimObj := func(u int, rt *accelRT, obj string, write bool) {
		if r, ok := m.slab.Lookup(obj); ok {
			claimData(u, rt, r.Base, r.End(), write)
		}
		// Unallocated objects fail the launch during wiring, before any
		// island engine runs; no claim needed.
	}
	for i, rt := range rts {
		for _, acc := range rt.def.Accesses {
			switch acc.Kind {
			case core.StreamIn, core.StreamOut:
				r, ok := m.slab.Lookup(acc.Obj)
				if !ok {
					continue
				}
				ev := rt.streams[acc.ID]
				eb := int64(acc.ElemBytes)
				first := r.Base + ev.Start*eb
				last := first
				if ev.Length > 1 {
					last = first + (ev.Length-1)*ev.Stride*eb
				}
				lo, hi := first, last
				if hi < lo {
					lo, hi = hi, lo
				}
				// Clamp like clusterOfElem, then pad by the combining
				// window: a combined fill FSM's union window extends at
				// most CombineWindow elements past any one accessor's.
				if lo < r.Base {
					lo = r.Base
				}
				if hi >= r.End() {
					hi = r.End() - 1
				}
				pad := int64(0)
				if m.cfg.Combining {
					st := ev.Stride
					if st < 0 {
						st = -st
					}
					pad = m.cfg.CombineWindow * st * eb
				}
				claimData(i, rt, lo-pad, hi+eb+pad, acc.Kind == core.StreamOut)
			}
		}
		for _, obj := range rt.def.Prefill {
			claimObj(i, rt, obj, true)
		}
		for _, op := range rt.def.Program {
			if op.Obj != "" {
				claimObj(i, rt, op.Obj, true)
			}
		}
	}
	islands = p.Islands()
	clusters = make([][]int, len(islands))
	for k, members := range islands {
		set := map[int]bool{}
		for _, u := range members {
			for c := range unitClusters[u] {
				set[c] = true
			}
		}
		for c := 0; c < nclusters; c++ {
			if set[c] {
				clusters[k] = append(clusters[k], c)
			}
		}
	}
	return islands, clusters
}

// clusterToken is the partition token for one L3 home cluster.
func clusterToken(c int) string {
	return "c:" + strconv.Itoa(c)
}

// pageToken is the partition token for one 4 KiB page of data bytes.
func pageToken(p int64) string {
	return "p:" + strconv.FormatInt(p, 10)
}

// wireInbox is the receiving end of a cross-island link wire: the window
// coordinator delivers messages into it at barriers (conservatively early
// — the link half waits for Msg.At), and the island's link half drains it
// single-threaded during its windows.
type wireInbox struct {
	q []accessunit.LinkMsg
}

// push adapts shard.Channel's Deliver callback.
func (w *wireInbox) push(m shard.Msg) {
	w.q = append(w.q, accessunit.LinkMsg{At: m.At, Kind: m.Kind, Val: m.Val})
}

// Head implements accessunit.WireRecv.
func (w *wireInbox) Head() (accessunit.LinkMsg, bool) {
	if len(w.q) == 0 {
		return accessunit.LinkMsg{}, false
	}
	return w.q[0], true
}

// Pop implements accessunit.WireRecv.
func (w *wireInbox) Pop() { w.q = w.q[1:] }

// chanSend is the sending end of a cross-island link wire, forwarding the
// link half's stamped messages into a shard channel for barrier delivery.
type chanSend struct {
	ch *shard.Channel
}

// Send implements accessunit.WireSend.
func (s chanSend) Send(m accessunit.LinkMsg) { s.ch.SendAt(m.At, m.Kind, m.Val) }

// crossLink wires a producer→consumer channel whose endpoints live on
// different islands: the Tx half joins the producer's engine, the Rx half
// the consumer's, and the two shard channels (elements forward, credits
// back) carry their messages across window barriers. The channel latency
// bounds — the windowing lookahead — are the minimum NoC traversal between
// the endpoint nodes, under which no stamped message can ever fall.
func crossLink(penv, cenv *launchEnv, src, dst *accessunit.Buffer, srcNode, dstNode, elemBytes int) (tx *accessunit.LinkTx, rx *accessunit.LinkRx, chans []*shard.Channel) {
	m := penv.m
	fwd := &shard.Channel{Latency: int64(m.mesh.MinLatency(srcNode, dstNode)), To: cenv.island}
	back := &shard.Channel{Latency: int64(m.mesh.MinLatency(dstNode, srcNode)), To: penv.island}
	fwdIn, backIn := &wireInbox{}, &wireInbox{}
	fwd.Deliver = fwdIn.push
	back.Deliver = backIn.push
	tx = accessunit.NewLinkTx(src, penv.mesh, srcNode, dstNode, elemBytes, dst.Cap(), chanSend{fwd}, backIn, penv.austats)
	rx = accessunit.NewLinkRx(dst, cenv.mesh, srcNode, dstNode, fwdIn, chanSend{back})
	return tx, rx, []*shard.Channel{fwd, back}
}

// shardJitter, when set by a test, is passed to the shard runner to perturb
// goroutine scheduling: the permutation tests prove merged results do not
// depend on completion order.
var shardJitter func(worker, island int)

// shardObserver, when set by a test, is called once per launch that takes
// the sharded path with the number of islands it split into. Tests use it
// to assert that sharding actually engaged (a run that silently fell back
// to serial would make the bit-identity sweeps vacuous).
var shardObserver func(islands int)

// runShardEngines executes one launch's island engines under the windowed
// coordinator and merges every observable back into the machine in
// canonical order. The L3 slices each island claimed have their energy
// redirected to the island's recording meter for the duration (tag/LRU/
// counter state stays in place — claims guarantee exclusive access, so
// those mutate race-free and end up exactly as a serial run leaves them).
// Cross-island links exchange messages through the Graph's channels at
// window barriers. Returns the launch's elapsed base cycles: the maximum
// over islands, which is the serial engine's count.
func (h *host) runShardEngines(envs []*launchEnv, clusters [][]int, chans []*shard.Channel) (int64, error) {
	m := h.m
	for k, env := range envs {
		for _, c := range clusters[k] {
			m.hier.L3Slice(c).SetMeter(env.meter)
		}
	}
	defer func() {
		for _, cl := range clusters {
			for _, c := range cl {
				m.hier.L3Slice(c).SetMeter(m.meter)
			}
		}
	}()
	g := &shard.Graph{Workers: m.cfg.Shards, Jitter: shardJitter, Stats: m.cfg.ShardStats}
	for _, env := range envs {
		g.AddShard(env.eng)
	}
	for _, c := range chans {
		g.AddChannel(c)
	}
	base, err := g.Run(m.cfg.MaxEngine)
	if err != nil {
		return 0, err
	}
	logs := make([]*energy.Log, len(envs))
	for k, env := range envs {
		logs[k] = env.elog
	}
	m.meter.ReplayMerge(logs)
	for _, l := range logs {
		l.Reset()
		m.logFree = append(m.logFree, l)
	}
	for _, env := range envs {
		m.mesh.AddCounters(env.mesh)
		m.dmem.AddCounters(env.dmem)
		m.austats.DABytes += env.austats.DABytes
		m.austats.AABytes += env.austats.AABytes
		m.austats.IntraBytes += env.austats.IntraBytes
		if m.met != nil {
			m.met.Merge(env.met)
		}
		if m.prof != nil {
			m.prof.Merge(env.prof)
		}
	}
	return base, nil
}
