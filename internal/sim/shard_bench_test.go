package sim

import (
	"fmt"
	"testing"

	"distda/internal/workloads"
)

// benchSharded measures one workload × configuration at a fixed shard
// count. The serial/sharded sub-benchmark pairs below carry the wall-clock
// claim for intra-run sharding; results are bit-identical at every count
// (TestShardedBitIdentical), so only ns/op may move. On a single-CPU host
// GOMAXPROCS pins every shard goroutine to one core and the sharded
// variants mostly measure coordination overhead — compare the pair on a
// multi-core machine for the real speedup (see docs/PERFORMANCE.md).
func benchSharded(b *testing.B, w *workloads.Workload, cfg Config, shards int) {
	b.ReportAllocs()
	data := w.NewData()
	cfg.Shards = shards
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(w.Kernel, w.Params, copyData(data), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedDense: the dense disparity pipeline under the
// allocation-spread config, whose four accelerators anchor on distinct
// NUCA clusters and split into four islands linked by windowed channels.
func BenchmarkShardedDense(b *testing.B) {
	w := workloads.Disparity(workloads.ScaleBench)
	for _, s := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			benchSharded(b, w, DistDAFA(), s)
		})
	}
}

// BenchmarkShardedSparse: the irregular SpMV case study on the PIM-in-DRAM
// backend, whose memory-controller-pinned engines partition by read/write
// page claims instead of cluster homes.
func BenchmarkShardedSparse(b *testing.B) {
	w := workloads.SpMV(workloads.ScaleBench)
	for _, s := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			benchSharded(b, w, DistDAPIM(), s)
		})
	}
}
