package sim

import (
	"reflect"
	"testing"
	"time"

	"distda/internal/workloads"
)

// shardSweep is the shard-count sweep shared by the sharding tests: serial
// plus the parallel counts the CI race matrix exercises.
var shardSweep = []int{1, 2, 4, 8}

// shardConfigs returns configurations that exercise the sharded launch path
// across all three backends: distributed in-order and CGRA compute, the
// allocation-spread variant (whose objects anchor on distinct clusters and
// therefore reliably split into several islands), the §VII off-chip path
// and the PIM-in-DRAM backend (memory-controller-pinned engines).
func shardConfigs() []Config {
	return []Config{DistDAIO(), DistDAF(), DistDAFA(), DistDAOffChip(), DistDAPIM()}
}

// TestShardedBitIdentical runs every workload under the sharding-relevant
// configurations at shard counts {1,2,4,8} and requires results identical
// to the serial run in every field — cycle counts, every counter, energy to
// the last bit. It also asserts that the sweep was not vacuous: at least
// one launch must actually have split into two or more islands.
func TestShardedBitIdentical(t *testing.T) {
	engaged := 0
	maxIslands := 0
	shardObserver = func(islands int) {
		engaged++
		if islands > maxIslands {
			maxIslands = islands
		}
	}
	defer func() { shardObserver = nil }()

	ws := workloads.All(workloads.ScaleTest)
	ws = append(ws, workloads.SpMV(workloads.ScaleTest))
	for _, w := range ws {
		data := w.NewData()
		for _, cfg := range shardConfigs() {
			var serial *Result
			for _, shards := range shardSweep {
				c := cfg
				c.Shards = shards
				r, err := Run(w.Kernel, w.Params, copyData(data), c)
				if err != nil {
					t.Fatalf("%s on %s shards=%d: %v", w.Name, cfg.Name, shards, err)
				}
				if shards == 1 {
					serial = r
					continue
				}
				if !reflect.DeepEqual(serial, r) {
					t.Errorf("%s on %s: shards=%d diverges from serial:\nserial:  %+v\nsharded: %+v",
						w.Name, cfg.Name, shards, serial, r)
				}
			}
		}
	}
	if engaged == 0 {
		t.Fatal("no launch took the sharded path; the sweep proved nothing")
	}
	if maxIslands < 2 {
		t.Fatalf("max islands %d < 2", maxIslands)
	}
	t.Logf("sharded launches: %d (max islands %d)", engaged, maxIslands)
}

// TestShardedPermutation perturbs shard goroutine scheduling with
// deterministic-but-staggered sleeps so islands complete in shuffled
// orders, and requires the simulation bytes to stay identical to the
// serial run. Two different jitter patterns guard against one pattern
// accidentally reproducing the canonical completion order.
func TestShardedPermutation(t *testing.T) {
	w := workloads.Pathfinder(workloads.ScaleTest)
	data := w.NewData()
	cfg := DistDAFA() // alloc-spread: anchors land on distinct clusters
	serialRes, err := Run(w.Kernel, w.Params, copyData(data), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pattern := 0; pattern < 2; pattern++ {
		pattern := pattern
		engaged := false
		shardObserver = func(int) { engaged = true }
		shardJitter = func(worker, island int) {
			// Pseudo-random per (pattern, worker, island): reverses and
			// staggers completion order without unbounded sleeping.
			d := time.Duration((worker*7+island*13+pattern*29)%17) * 100 * time.Microsecond
			time.Sleep(d)
		}
		c := cfg
		c.Shards = 4
		r, runErr := Run(w.Kernel, w.Params, copyData(data), c)
		shardJitter = nil
		shardObserver = nil
		if runErr != nil {
			t.Fatalf("pattern %d: %v", pattern, runErr)
		}
		if !engaged {
			t.Fatalf("pattern %d: launch did not shard", pattern)
		}
		if !reflect.DeepEqual(serialRes, r) {
			t.Errorf("pattern %d: jittered sharded run diverges from serial:\nserial:   %+v\njittered: %+v",
				pattern, serialRes, r)
		}
	}
}
