package sim

import (
	"reflect"
	"testing"

	"distda/internal/engine/shard"
	"distda/internal/workloads"
)

// TestShardStatsObservationalOnly runs a sharding workload with and
// without a ShardStats collector attached and requires bit-identical
// results — wall-clock attribution must never leak into the simulation —
// while the collector itself must have recorded the sharded launches.
func TestShardStatsObservationalOnly(t *testing.T) {
	w := workloads.Pathfinder(workloads.ScaleTest)
	data := w.NewData()
	cfg := DistDAFA() // alloc-spread: reliably splits into several islands
	cfg.Shards = 4

	plain, err := Run(w.Kernel, w.Params, copyData(data), cfg)
	if err != nil {
		t.Fatal(err)
	}

	st := &shard.Stats{}
	c := cfg
	c.ShardStats = st
	observed, err := Run(w.Kernel, w.Params, copyData(data), c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("shard stats changed the result:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
	if st.Empty() || st.Launches == 0 || st.Windows == 0 || len(st.Islands) < 2 {
		t.Fatalf("sharded run recorded no attribution: %+v", st)
	}
}

// TestShardStatsCountsShardCountStable asserts the deterministic count
// fields that do not depend on the island partition (launches) accumulate
// consistently, and that a serial run records nothing.
func TestShardStatsSerialRecordsNothing(t *testing.T) {
	w := workloads.Pathfinder(workloads.ScaleTest)
	data := w.NewData()
	cfg := DistDAFA()
	cfg.Shards = 1 // serial: the sharded path is never taken
	st := &shard.Stats{}
	cfg.ShardStats = st
	if _, err := Run(w.Kernel, w.Params, copyData(data), cfg); err != nil {
		t.Fatal(err)
	}
	if !st.Empty() {
		t.Fatalf("serial run recorded shard stats: %+v", st)
	}
}
