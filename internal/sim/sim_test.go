package sim

import (
	"math/rand"
	"testing"

	"distda/internal/ir"
)

func vecAddKernel(n int) (*ir.Kernel, map[string]float64, func() map[string][]float64) {
	k := &ir.Kernel{
		Name:   "vecadd",
		Params: []string{"N"},
		Objects: []ir.ObjDecl{
			{Name: "A", Len: n, ElemBytes: 8},
			{Name: "B", Len: n, ElemBytes: 8},
			{Name: "C", Len: n, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.St("C", ir.V("i"), ir.AddE(ir.Ld("A", ir.V("i")), ir.Ld("B", ir.V("i")))),
			),
		},
	}
	gen := func() map[string][]float64 {
		rng := rand.New(rand.NewSource(5))
		a, b, c := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = float64(rng.Intn(1000))
			b[i] = float64(rng.Intn(1000))
		}
		return map[string][]float64{"A": a, "B": b, "C": c}
	}
	return k, map[string]float64{"N": float64(n)}, gen
}

// stencil2d: row-wise 3-point average over a matrix (nested loops).
func stencilKernel(rows, cols int) (*ir.Kernel, map[string]float64, func() map[string][]float64) {
	n := rows * cols
	k := &ir.Kernel{
		Name:   "stencil",
		Params: []string{"R", "W"},
		Objects: []ir.ObjDecl{
			{Name: "A", Len: n, ElemBytes: 8},
			{Name: "B", Len: n, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("R"),
				ir.Loop("j", ir.C(1), ir.SubE(ir.P("W"), ir.C(1)),
					ir.St("B", ir.Idx2(ir.V("i"), ir.P("W"), ir.V("j")),
						ir.DivE(
							ir.AddE(ir.Ld("A", ir.SubE(ir.Idx2(ir.V("i"), ir.P("W"), ir.V("j")), ir.C(1))),
								ir.AddE(ir.Ld("A", ir.Idx2(ir.V("i"), ir.P("W"), ir.V("j"))),
									ir.Ld("A", ir.AddE(ir.Idx2(ir.V("i"), ir.P("W"), ir.V("j")), ir.C(1))))),
							ir.C(3))),
				),
			),
		},
	}
	gen := func() map[string][]float64 {
		rng := rand.New(rand.NewSource(7))
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(100))
		}
		return map[string][]float64{"A": a, "B": b}
	}
	return k, map[string]float64{"R": float64(rows), "W": float64(cols)}, gen
}

// gather: C[i] = V[IDX[i]] — indirect loads.
func gatherKernel(n int) (*ir.Kernel, map[string]float64, func() map[string][]float64) {
	k := &ir.Kernel{
		Name:   "gather",
		Params: []string{"N"},
		Objects: []ir.ObjDecl{
			{Name: "IDX", Len: n, ElemBytes: 8},
			{Name: "V", Len: n, ElemBytes: 8},
			{Name: "C", Len: n, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.St("C", ir.V("i"), ir.Ld("V", ir.Ld("IDX", ir.V("i")))),
			),
		},
	}
	gen := func() map[string][]float64 {
		rng := rand.New(rand.NewSource(11))
		idx, v, c := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			idx[i] = float64(rng.Intn(n))
			v[i] = float64(rng.Intn(5000))
		}
		return map[string][]float64{"IDX": idx, "V": v, "C": c}
	}
	return k, map[string]float64{"N": float64(n)}, gen
}

// reduction with final scalar store after the loop.
func reduceKernel(n int) (*ir.Kernel, map[string]float64, func() map[string][]float64) {
	k := &ir.Kernel{
		Name:    "reduce",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: n, ElemBytes: 8}, {Name: "S", Len: 1, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Set("sum", ir.C(0)),
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.Set("sum", ir.AddE(ir.L("sum"), ir.Ld("A", ir.V("i")))),
			),
			ir.St("S", ir.C(0), ir.L("sum")),
		},
	}
	gen := func() map[string][]float64 {
		rng := rand.New(rand.NewSource(13))
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(50))
		}
		return map[string][]float64{"A": a, "S": {0}}
	}
	return k, map[string]float64{"N": float64(n)}, gen
}

func allConfigs() []Config { return AllPaperConfigs() }

func TestRunValidatesAcrossConfigs(t *testing.T) {
	type mk func() (*ir.Kernel, map[string]float64, func() map[string][]float64)
	kernels := []mk{
		func() (*ir.Kernel, map[string]float64, func() map[string][]float64) { return vecAddKernel(2048) },
		func() (*ir.Kernel, map[string]float64, func() map[string][]float64) { return stencilKernel(16, 64) },
		func() (*ir.Kernel, map[string]float64, func() map[string][]float64) { return gatherKernel(1024) },
		func() (*ir.Kernel, map[string]float64, func() map[string][]float64) { return reduceKernel(2048) },
	}
	for _, make := range kernels {
		k, params, gen := make()
		for _, cfg := range allConfigs() {
			res, err := Run(k, params, gen(), cfg)
			if err != nil {
				t.Fatalf("%s on %s: %v", k.Name, cfg.Name, err)
			}
			if !res.Validated {
				t.Fatalf("%s on %s: not validated", k.Name, cfg.Name)
			}
			if res.Cycles <= 0 || res.EnergyPJ <= 0 {
				t.Fatalf("%s on %s: degenerate result %+v", k.Name, cfg.Name, res)
			}
		}
	}
}

func TestAccelConfigsUseAccelerators(t *testing.T) {
	k, params, gen := vecAddKernel(2048)
	for _, cfg := range allConfigs()[1:] { // skip OoO
		res, err := Run(k, params, gen(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.AccelOps == 0 {
			t.Fatalf("%s: no accelerator ops", cfg.Name)
		}
		if res.Launches == 0 {
			t.Fatalf("%s: no launches", cfg.Name)
		}
		if res.DABytes == 0 {
			t.Fatalf("%s: no accel-cache traffic", cfg.Name)
		}
	}
}

func TestOoOHasNoAccelActivity(t *testing.T) {
	k, params, gen := vecAddKernel(1024)
	res, err := Run(k, params, gen(), OoO())
	if err != nil {
		t.Fatal(err)
	}
	if res.AccelOps != 0 || res.Launches != 0 || res.DABytes != 0 {
		t.Fatalf("OoO has accel activity: %+v", res)
	}
	if res.HostInstr == 0 || res.CacheL1 == 0 {
		t.Fatal("OoO executed nothing")
	}
}

func TestStreamingEnergyOrdering(t *testing.T) {
	// The headline claim, directionally: near-data configs beat the OoO
	// baseline on energy for a streaming kernel.
	k, params, gen := vecAddKernel(8192)
	base, err := Run(k, params, gen(), OoO())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{DistDAIO(), DistDAF()} {
		res, err := Run(k, params, gen(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		eff := res.EnergyEfficiencyVs(base)
		if eff <= 1 {
			t.Fatalf("%s energy efficiency vs OoO = %.2f, want > 1", cfg.Name, eff)
		}
	}
}

func TestDistReducesCacheAccessesVsOoO(t *testing.T) {
	k, params, gen := vecAddKernel(8192)
	base, _ := Run(k, params, gen(), OoO())
	dist, err := Run(k, params, gen(), DistDAF())
	if err != nil {
		t.Fatal(err)
	}
	baseTotal := base.CacheL1 + base.CacheL2 + base.CacheL3
	distTotal := dist.CacheL1 + dist.CacheL2 + dist.CacheL3
	if distTotal >= baseTotal {
		t.Fatalf("cache accesses: dist %d !< OoO %d", distTotal, baseTotal)
	}
}

func TestMonoCAVsDistTraffic(t *testing.T) {
	// Dist-DA should move fewer bytes than Mono-CA's centralized accesses.
	k, params, gen := stencilKernel(64, 2048)
	mono, err := Run(k, params, gen(), MonoCA())
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Run(k, params, gen(), DistDAF())
	if err != nil {
		t.Fatal(err)
	}
	if dist.DataMovedBytes >= mono.DataMovedBytes {
		t.Fatalf("data moved: dist %d !< mono-CA %d", dist.DataMovedBytes, mono.DataMovedBytes)
	}
}

func TestMMIOOverheadSmall(t *testing.T) {
	k, params, gen := vecAddKernel(8192)
	res, err := Run(k, params, gen(), DistDAIO())
	if err != nil {
		t.Fatal(err)
	}
	if res.MMIOHost == 0 {
		t.Fatal("no MMIO recorded")
	}
	if pct := res.InitOverheadPct(); pct > 5 {
		t.Fatalf("%%init = %.2f, want small", pct)
	}
}

func TestClockingSpeedup(t *testing.T) {
	k, params, gen := stencilKernel(16, 128)
	r1, err := Run(k, params, gen(), DistDAIO().WithClock(1))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(k, params, gen(), DistDAIO().WithClock(3))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cycles > r1.Cycles {
		t.Fatalf("3 GHz slower than 1 GHz: %d vs %d", r3.Cycles, r1.Cycles)
	}
}

func TestRunThreadsParallelLoop(t *testing.T) {
	const n = 64 * 32
	k := &ir.Kernel{
		Name:   "parvec",
		Params: []string{"R", "W"},
		Objects: []ir.ObjDecl{
			{Name: "A", Len: n, ElemBytes: 8},
			{Name: "B", Len: n, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.ParLoop("i", ir.C(0), ir.P("R"),
				ir.Loop("j", ir.C(0), ir.P("W"),
					ir.St("B", ir.Idx2(ir.V("i"), ir.P("W"), ir.V("j")),
						ir.MulE(ir.Ld("A", ir.Idx2(ir.V("i"), ir.P("W"), ir.V("j"))), ir.C(3))),
				),
			),
		},
	}
	params := map[string]float64{"R": 64, "W": 32}
	gen := func() map[string][]float64 {
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i] = float64(i % 97)
		}
		return map[string][]float64{"A": a, "B": b}
	}
	cfg := DistDAIO()
	r1, err := RunThreads(k, params, gen(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunThreads(k, params, gen(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r4.Validated {
		t.Fatal("threaded run not validated")
	}
	if r4.Cycles >= r1.Cycles {
		t.Fatalf("4 threads not faster: %d vs %d", r4.Cycles, r1.Cycles)
	}
}
