package sim

import (
	"testing"

	"distda/internal/ir"
)

func TestStripMineParallelInnermost(t *testing.T) {
	body := []ir.Stmt{
		ir.Loop("d", ir.C(0), ir.P("D"),
			ir.ParLoop("e", ir.C(0), ir.P("M"),
				ir.St("B", ir.V("e"), ir.Ld("A", ir.V("e"))),
			),
		),
	}
	k := &ir.Kernel{
		Name:   "sm",
		Params: []string{"D", "M"},
		Objects: []ir.ObjDecl{
			{Name: "A", Len: 100, ElemBytes: 8},
			{Name: "B", Len: 100, ElemBytes: 8},
		},
		Body: body,
	}
	out := stripMineParallelInnermost(k, 4)
	if out == k {
		t.Fatal("kernel not rewritten")
	}
	if err := ir.Validate(out); err != nil {
		t.Fatalf("rewritten kernel invalid: %v", err)
	}
	loops := ir.Loops(out.Body)
	// d, __t, e — three loops now; __t is parallel, e no longer is.
	if len(loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(loops))
	}
	var par int
	for _, f := range loops {
		if f.Parallel {
			par++
			if f.IV != "__t" {
				t.Fatalf("parallel loop is %q, want __t", f.IV)
			}
		}
	}
	if par != 1 {
		t.Fatalf("parallel loops = %d", par)
	}
	// Functional equivalence: run both with M values that do not divide
	// evenly by the thread count.
	for _, m := range []float64{97, 100, 3} {
		params := map[string]float64{"D": 2, "M": m}
		mk := func() map[string][]float64 {
			a, b := make([]float64, 100), make([]float64, 100)
			for i := range a {
				a[i] = float64(i * 3)
			}
			return map[string][]float64{"A": a, "B": b}
		}
		d1, d2 := mk(), mk()
		if _, err := ir.Run(k, params, d1, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := ir.Run(out, params, d2, nil); err != nil {
			t.Fatal(err)
		}
		for i := range d1["B"] {
			if d1["B"][i] != d2["B"][i] {
				t.Fatalf("M=%g: B[%d] differs: %g vs %g", m, i, d1["B"][i], d2["B"][i])
			}
		}
	}
}

func TestStripMineLeavesNonParallelAlone(t *testing.T) {
	k, _, _ := vecAddKernel(64)
	if out := stripMineParallelInnermost(k, 4); out != k {
		t.Fatal("non-parallel kernel rewritten")
	}
}

func TestLaunchInvariant(t *testing.T) {
	cases := []struct {
		e    ir.Expr
		want bool
	}{
		{ir.C(3), true},
		{ir.AddE(ir.P("N"), ir.C(1)), true},
		{ir.V("i"), false},
		{ir.Ld("A", ir.C(0)), false},
		{ir.MulE(ir.P("N"), ir.V("t")), false},
		{ir.L("x"), false},
	}
	for _, c := range cases {
		if got := launchInvariant(c.e); got != c.want {
			t.Errorf("launchInvariant(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestConfigConstructors(t *testing.T) {
	for _, cfg := range AllPaperConfigs() {
		if cfg.Name == "" {
			t.Fatal("unnamed config")
		}
		if cfg.HasAccel() && cfg.AccelGHz == 0 {
			t.Fatalf("%s: no accel clock", cfg.Name)
		}
	}
	if c := DistDAIO().WithClock(3); c.Name != "Dist-DA-IO@3GHz" || c.AccelGHz != 3 {
		t.Fatalf("WithClock: %+v", c)
	}
	if !DistDAIOSW().SWPrefetch || DistDAIOSW().IOWidth != 4 {
		t.Fatal("DistDAIOSW knobs")
	}
	if !DistDAFA().AllocSpread {
		t.Fatal("DistDAFA knobs")
	}
	if !MonoCA().Centralized || MonoCA().PrivCacheKB != 8 {
		t.Fatal("MonoCA knobs")
	}
}
