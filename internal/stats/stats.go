// Package stats provides the small numeric helpers the evaluation harness
// uses: geometric means and normalization, matching how the paper
// aggregates per-benchmark ratios.
package stats

import "math"

// Geomean returns the geometric mean of vals, ignoring non-positive entries
// (a ratio of zero would otherwise collapse the mean). Returns 0 for an
// empty input.
func Geomean(vals []float64) float64 {
	sum := 0.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Normalize returns vals scaled so that base maps to 1. A zero base yields
// zeros.
func Normalize(vals []float64, base float64) []float64 {
	out := make([]float64, len(vals))
	if base == 0 {
		return out
	}
	for i, v := range vals {
		out[i] = v / base
	}
	return out
}

// Ratio returns a/b, 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}
