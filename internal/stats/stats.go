// Package stats provides the small numeric helpers the evaluation harness
// uses: geometric means and normalization, matching how the paper
// aggregates per-benchmark ratios, plus the fixed-bucket log2 histogram the
// tracing/metrics subsystem builds its latency distributions on.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of vals, ignoring entries that carry no
// ratio information: non-positive values (a ratio of zero would collapse the
// mean), NaNs and infinities are all skipped explicitly. Returns 0 for an
// empty input or when every entry is skipped.
func Geomean(vals []float64) float64 {
	sum := 0.0
	n := 0
	for _, v := range vals {
		if v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Normalize returns vals scaled so that base maps to 1. A zero, NaN or
// infinite base carries no scale information and yields all zeros (never
// NaN/Inf cells in a rendered table).
func Normalize(vals []float64, base float64) []float64 {
	out := make([]float64, len(vals))
	if base == 0 || math.IsNaN(base) || math.IsInf(base, 0) {
		return out
	}
	for i, v := range vals {
		out[i] = v / base
	}
	return out
}

// Ratio returns a/b, 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// histBuckets is the fixed bucket count of Histogram: bucket 0 holds values
// in [0, 1), bucket i (i >= 1) holds [2^(i-1), 2^i). 63 pow-2 buckets cover
// every non-negative int64 a cycle-level simulator can produce.
const histBuckets = 64

// Histogram is a fixed-layout log2 histogram for non-negative samples
// (latencies in cycles, occupancies, hop counts). The fixed layout makes
// Merge exact and allocation-free, which the per-worker metric registries
// rely on when the experiment matrix folds them together deterministically.
//
// The zero value is ready to use. Negative and NaN samples are dropped (and
// counted in Dropped) rather than silently folded into bucket 0.
type Histogram struct {
	Buckets [histBuckets]int64
	N       int64   // accepted samples
	Sum     float64 // sum of accepted samples
	Min     float64 // exact min of accepted samples (0 when N == 0)
	Max     float64 // exact max of accepted samples (0 when N == 0)
	Dropped int64   // negative / NaN samples rejected
}

// bucketOf returns the bucket index for a non-negative sample.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	// +Inf and anything past the last bucket's lower edge clamp into the
	// final bucket before Log2 can overflow the int conversion.
	if v >= math.Ldexp(1, histBuckets-2) {
		return histBuckets - 1
	}
	b := 1 + int(math.Log2(v))
	if b < 1 {
		b = 1
	}
	if b > histBuckets-1 {
		b = histBuckets - 1
	}
	// Guard the boundary: floating-point log2 of an exact power of two may
	// land a hair off the integer.
	for b < histBuckets-1 && v >= math.Ldexp(1, b) {
		b++
	}
	for b > 1 && v < math.Ldexp(1, b-1) {
		b--
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		h.Dropped++
		return
	}
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

// ObserveN records the same sample n times (bulk accounting).
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	if math.IsNaN(v) || v < 0 {
		h.Dropped += n
		return
	}
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N += n
	h.Sum += v * float64(n)
	h.Buckets[bucketOf(v)] += n
}

// Mean returns the arithmetic mean of accepted samples, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Percentile returns an upper bound on the p-th percentile (p in [0,100]):
// the upper edge of the bucket where the cumulative count crosses p, with
// the exact Min/Max used for the extreme buckets. Returns 0 when empty; p
// outside [0,100] is clamped.
func (h *Histogram) Percentile(p float64) float64 {
	if h.N == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min
	}
	if p >= 100 {
		return h.Max
	}
	target := int64(math.Ceil(p / 100 * float64(h.N)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Buckets {
		cum += c
		if cum >= target {
			hi := upperEdge(i)
			if hi > h.Max {
				hi = h.Max
			}
			if hi < h.Min {
				hi = h.Min
			}
			return hi
		}
	}
	return h.Max
}

// upperEdge returns the exclusive upper edge of bucket i.
func upperEdge(i int) float64 {
	if i == 0 {
		return 1
	}
	return math.Ldexp(1, i)
}

// Merge folds other into h. Both layouts are fixed, so the merge is exact.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || (other.N == 0 && other.Dropped == 0) {
		return
	}
	if other.N > 0 {
		if h.N == 0 || other.Min < h.Min {
			h.Min = other.Min
		}
		if h.N == 0 || other.Max > h.Max {
			h.Max = other.Max
		}
	}
	h.N += other.N
	h.Sum += other.Sum
	h.Dropped += other.Dropped
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// String renders the summary line used by the metrics table: count, mean and
// the p50/p95/p99 upper bounds.
func (h *Histogram) String() string {
	if h.N == 0 {
		return "n=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50<=%g p95<=%g p99<=%g max=%g",
		h.N, h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max)
	return b.String()
}
