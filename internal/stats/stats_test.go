package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("Geomean(2,8) = %g", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %g", g)
	}
	// Non-positive entries are skipped, not poisonous.
	if g := Geomean([]float64{0, -3, 4}); g != 4 {
		t.Fatalf("Geomean with zeros = %g", g)
	}
	// NaN and Inf entries are skipped explicitly, never propagated.
	if g := Geomean([]float64{math.NaN(), math.Inf(1), 9}); math.Abs(g-9) > 1e-9 {
		t.Fatalf("Geomean with NaN/Inf = %g", g)
	}
	if g := Geomean([]float64{math.NaN(), math.Inf(-1)}); g != 0 {
		t.Fatalf("Geomean of only-skipped = %g", g)
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		var vals []float64
		for _, r := range raw {
			vals = append(vals, float64(r%1000)+1)
		}
		if len(vals) == 0 {
			return true
		}
		g := Geomean(vals)
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8}, 4)
	if out[0] != 0.5 || out[1] != 1 || out[2] != 2 {
		t.Fatalf("Normalize = %v", out)
	}
	if z := Normalize([]float64{1, 2}, 0); z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize by zero = %v", z)
	}
	if z := Normalize([]float64{1, 2}, math.NaN()); z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize by NaN = %v", z)
	}
	if z := Normalize([]float64{1, 2}, math.Inf(1)); z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize by +Inf = %v", z)
	}
	if z := Normalize(nil, 3); len(z) != 0 {
		t.Fatalf("Normalize(nil) = %v", z)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for _, v := range []float64{0, 1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	if h.N != 7 || h.Min != 0 || h.Max != 1000 {
		t.Fatalf("n=%d min=%g max=%g", h.N, h.Min, h.Max)
	}
	if h.Sum != 1110 {
		t.Fatalf("sum=%g", h.Sum)
	}
	// Bucket layout: [0,1) [1,2) [2,4) [4,8) ...
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[2] != 2 || h.Buckets[3] != 1 {
		t.Fatalf("buckets=%v", h.Buckets[:8])
	}
	h.Observe(-1)
	h.Observe(math.NaN())
	if h.Dropped != 2 || h.N != 7 {
		t.Fatalf("dropped=%d n=%d", h.Dropped, h.N)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Exact powers of two must land in the bucket they open.
	for i := 1; i < 50; i++ {
		v := math.Ldexp(1, i)
		if b := bucketOf(v); b != i+1 {
			t.Fatalf("bucketOf(2^%d) = %d, want %d", i, b, i+1)
		}
		if b := bucketOf(v - 0.5); b != i {
			t.Fatalf("bucketOf(2^%d - 0.5) = %d, want %d", i, b, i)
		}
	}
	// Huge values clamp into the last bucket instead of overflowing.
	if b := bucketOf(math.Ldexp(1, 400)); b != histBuckets-1 {
		t.Fatalf("huge sample bucket = %d", b)
	}
	if b := bucketOf(math.Inf(1)); b != histBuckets-1 {
		t.Fatalf("+Inf bucket = %d", b)
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	// p50 of 0..99 falls in bucket [32,64): the bound must cover it.
	if p := h.Percentile(50); p < 49 || p > 64 {
		t.Fatalf("p50 = %g", p)
	}
	if p := h.Percentile(99); p < 98 || p > 99 {
		t.Fatalf("p99 = %g (max-clamped upper bound expected)", p)
	}
	if h.Percentile(0) != h.Min || h.Percentile(100) != h.Max {
		t.Fatal("percentile extremes must be exact min/max")
	}
	if h.Percentile(-5) != h.Min || h.Percentile(250) != h.Max {
		t.Fatal("out-of-range percentiles must clamp")
	}
}

func TestHistogramPercentileIsUpperBound(t *testing.T) {
	f := func(raw []uint32, pRaw uint8) bool {
		var h Histogram
		var vals []float64
		for _, r := range raw {
			v := float64(r % 100000)
			vals = append(vals, v)
			h.Observe(v)
		}
		if len(vals) == 0 {
			return true
		}
		p := float64(pRaw % 101)
		bound := h.Percentile(p)
		// Count how many samples sit at or below the bound: must be at
		// least ceil(p/100*n) — the bound is a true upper bound.
		need := int64(math.Ceil(p / 100 * float64(len(vals))))
		var have int64
		for _, v := range vals {
			if v <= bound {
				have++
			}
		}
		return have >= need
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Observe(float64(i))
	}
	for i := 50; i < 100; i++ {
		b.Observe(float64(i))
	}
	b.Observe(-3) // dropped
	var whole Histogram
	for i := 0; i < 100; i++ {
		whole.Observe(float64(i))
	}
	a.Merge(&b)
	if a.N != whole.N || a.Sum != whole.Sum || a.Min != whole.Min || a.Max != whole.Max {
		t.Fatalf("merge summary mismatch: %+v vs %+v", a, whole)
	}
	if a.Dropped != 1 {
		t.Fatalf("merge dropped = %d", a.Dropped)
	}
	if a.Buckets != whole.Buckets {
		t.Fatalf("merge buckets mismatch:\n%v\n%v", a.Buckets, whole.Buckets)
	}
	// Merging nil and empty is a no-op.
	before := a
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a != before {
		t.Fatal("merge of nil/empty changed the histogram")
	}
}

func TestHistogramObserveN(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 7; i++ {
		a.Observe(12)
	}
	b.ObserveN(12, 7)
	if a != b {
		t.Fatalf("ObserveN mismatch: %+v vs %+v", a, b)
	}
	b.ObserveN(5, 0)
	b.ObserveN(5, -3)
	if a != b {
		t.Fatal("ObserveN with n<=0 must be a no-op")
	}
	b.ObserveN(-1, 4)
	if b.Dropped != 4 {
		t.Fatalf("ObserveN negative sample dropped = %d", b.Dropped)
	}
}

func TestRatioAndMean(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio")
	}
	if Mean([]float64{1, 2, 3}) != 2 || Mean(nil) != 0 {
		t.Fatal("Mean")
	}
}
