package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("Geomean(2,8) = %g", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %g", g)
	}
	// Non-positive entries are skipped, not poisonous.
	if g := Geomean([]float64{0, -3, 4}); g != 4 {
		t.Fatalf("Geomean with zeros = %g", g)
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		var vals []float64
		for _, r := range raw {
			vals = append(vals, float64(r%1000)+1)
		}
		if len(vals) == 0 {
			return true
		}
		g := Geomean(vals)
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8}, 4)
	if out[0] != 0.5 || out[1] != 1 || out[2] != 2 {
		t.Fatalf("Normalize = %v", out)
	}
	if z := Normalize([]float64{1, 2}, 0); z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize by zero = %v", z)
	}
}

func TestRatioAndMean(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio")
	}
	if Mean([]float64{1, 2, 3}) != 2 || Mean(nil) != 0 {
		t.Fatal("Mean")
	}
}
