package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"distda/internal/report"
	"distda/internal/stats"
)

// Metrics is the per-run metric registry: named counters, gauges and
// cycle-bucketed histograms that components register into at assembly time.
// Names are conventionally "component/metric" — the renderer groups on the
// prefix. A nil *Metrics is the disabled state: it hands out nil handles
// whose recording methods no-op, so instrumentation is unconditional.
//
// Registration (Counter/Gauge/Histogram) is mutex-guarded and may happen
// from any goroutine; recording through a handle is lock-free and owned by
// the run's single goroutine. Registries from parallel runs are folded
// together deterministically with Merge.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
}

// NewMetrics returns an enabled registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Hist{},
	}
}

// Counter returns the named counter, creating it on first use. Nil on a nil
// registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil on a nil
// registry.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named log2 histogram, creating it on first use. Nil
// on a nil registry.
func (m *Metrics) Histogram(name string) *Hist {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		h = &Hist{}
		m.hists[name] = h
	}
	return h
}

// Counter is a monotonically accumulating integer metric. Nil-receiver safe.
type Counter struct{ n int64 }

// Add accumulates n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n += n
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is a last-value metric. Nil-receiver safe.
type Gauge struct {
	v   float64
	set bool
}

// Set records the value (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	g.set = true
}

// Value returns the last set value (0 on nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Hist is a cycle-bucketed log2 histogram metric with p50/p95/p99 bounds.
// Nil-receiver safe.
type Hist struct{ h stats.Histogram }

// Observe records one sample (no-op on nil).
func (h *Hist) Observe(v float64) {
	if h == nil {
		return
	}
	h.h.Observe(v)
}

// ObserveN records the sample n times (no-op on nil).
func (h *Hist) ObserveN(v float64, n int64) {
	if h == nil {
		return
	}
	h.h.ObserveN(v, n)
}

// Snapshot returns a copy of the underlying histogram (zero value on nil).
func (h *Hist) Snapshot() stats.Histogram {
	if h == nil {
		return stats.Histogram{}
	}
	return h.h
}

// Names returns every registered metric name, sorted. Empty on a nil
// registry.
func (m *Metrics) Names() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.counters)+len(m.gauges)+len(m.hists))
	for n := range m.counters {
		names = append(names, n)
	}
	for n := range m.gauges {
		names = append(names, n)
	}
	for n := range m.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge folds other's metrics into m: counters add, histograms merge
// bucket-wise, gauges keep other's value when it was set (last writer wins
// in merge order, which the caller keeps deterministic). A nil m or other is
// a no-op.
func (m *Metrics) Merge(other *Metrics) {
	if m == nil || other == nil {
		return
	}
	other.mu.Lock()
	defer other.mu.Unlock()
	for name, c := range other.counters {
		m.Counter(name).Add(c.n)
	}
	for name, g := range other.gauges {
		if g.set {
			m.Gauge(name).Set(g.v)
		}
	}
	for name, h := range other.hists {
		mh := m.Histogram(name)
		mh.h.Merge(&h.h)
	}
}

// splitName separates "component/metric" into its columns.
func splitName(name string) (comp, metric string) {
	if i := strings.Index(name, "/"); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "-", name
}

// Table renders the registry as a per-component metrics table (component,
// metric, value), sorted by component then metric, via internal/report.
func (m *Metrics) Table() *report.Table {
	t := &report.Table{
		Title:   "Metrics by component",
		Columns: []string{"component", "metric", "value"},
	}
	if m == nil {
		t.AddNote("metrics disabled")
		return t
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// kind breaks (comp, metric) ties: a counter and a gauge/histogram
	// registered under the same full name would otherwise order by map
	// iteration, making the rendered table differ between runs (and between
	// Merge orders of parallel shards). Counters sort before gauges before
	// histograms.
	type row struct {
		comp, metric string
		kind         int
		value        string
	}
	var rows []row
	for name, c := range m.counters {
		comp, metric := splitName(name)
		rows = append(rows, row{comp, metric, 0, fmt.Sprintf("%d", c.n)})
	}
	for name, g := range m.gauges {
		comp, metric := splitName(name)
		rows = append(rows, row{comp, metric, 1, fmt.Sprintf("%g", g.v)})
	}
	for name, h := range m.hists {
		comp, metric := splitName(name)
		rows = append(rows, row{comp, metric, 2, h.h.String()})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].comp != rows[j].comp {
			return rows[i].comp < rows[j].comp
		}
		if rows[i].metric != rows[j].metric {
			return rows[i].metric < rows[j].metric
		}
		return rows[i].kind < rows[j].kind
	})
	for _, r := range rows {
		t.AddRow(r.comp, r.metric, r.value)
	}
	return t
}
