package trace

import (
	"strings"
	"testing"
)

func TestNilMetricsIsSafe(t *testing.T) {
	var m *Metrics
	c := m.Counter("a/b")
	g := m.Gauge("a/g")
	h := m.Histogram("a/h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Add(5)
	c.Inc()
	g.Set(3)
	h.Observe(10)
	h.ObserveN(4, 3)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().N != 0 {
		t.Fatal("nil handles must record nothing")
	}
	m.Merge(NewMetrics())
	NewMetrics().Merge(m)
	if got := m.Table().Render(); !strings.Contains(got, "metrics disabled") {
		t.Fatalf("nil table = %q", got)
	}
}

func TestMetricsHandles(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("noc/transfers")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d", c.Value())
	}
	if m.Counter("noc/transfers") != c {
		t.Fatal("counter handle must be stable per name")
	}
	g := m.Gauge("dram/latency")
	g.Set(160)
	if g.Value() != 160 {
		t.Fatalf("gauge = %g", g.Value())
	}
	h := m.Histogram("cache/host_lat")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	if s := h.Snapshot(); s.N != 100 || s.Max != 99 {
		t.Fatalf("hist snapshot = %+v", s)
	}
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Counter("x/c").Add(2)
	b.Counter("x/c").Add(5)
	b.Counter("y/c").Add(1)
	a.Histogram("x/h").Observe(8)
	b.Histogram("x/h").Observe(16)
	b.Gauge("x/g").Set(7)
	a.Merge(b)
	if v := a.Counter("x/c").Value(); v != 7 {
		t.Fatalf("merged counter = %d", v)
	}
	if v := a.Counter("y/c").Value(); v != 1 {
		t.Fatalf("merged new counter = %d", v)
	}
	if s := a.Histogram("x/h").Snapshot(); s.N != 2 || s.Min != 8 || s.Max != 16 {
		t.Fatalf("merged hist = %+v", s)
	}
	if v := a.Gauge("x/g").Value(); v != 7 {
		t.Fatalf("merged gauge = %g", v)
	}
	// Unset gauges do not overwrite.
	c := NewMetrics()
	c.Gauge("x/g") // registered but never Set
	a.Merge(c)
	if v := a.Gauge("x/g").Value(); v != 7 {
		t.Fatalf("unset gauge overwrote: %g", v)
	}
}

func TestMetricsTableDeterminism(t *testing.T) {
	build := func() *Metrics {
		m := NewMetrics()
		m.Counter("b/z").Add(1)
		m.Counter("a/y").Add(2)
		m.Gauge("a/g").Set(3)
		m.Histogram("c/h").Observe(4)
		m.Counter("plain").Add(9)
		return m
	}
	t1 := build().Table().Render()
	t2 := build().Table().Render()
	if t1 != t2 {
		t.Fatalf("table render not deterministic:\n%s\n%s", t1, t2)
	}
	// Sorted by component then metric; un-namespaced metrics group under "-".
	var comps []string
	for _, line := range strings.Split(t1, "\n") {
		f := strings.Fields(line)
		if len(f) >= 2 && (f[0] == "-" || len(f[0]) == 1) {
			comps = append(comps, f[0])
		}
	}
	want := []string{"-", "a", "a", "b", "c"}
	if strings.Join(comps, ",") != strings.Join(want, ",") {
		t.Fatalf("component order = %v, want %v:\n%s", comps, want, t1)
	}
}
