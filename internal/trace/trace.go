// Package trace is the simulator's observability backbone: a cycle-accurate
// span/instant tracer with a zero-overhead disabled fast path, and a metrics
// registry (counters, gauges, log2 histograms) components register into at
// assembly time.
//
// Timestamps are engine base cycles (1/6 ns per tick, engine.BaseGHz = 6).
// Each component owns a private append-only event buffer — no locks on the
// recording path — and buffers are merged, sorted and exported at flush
// time. The exporter emits Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto (ts mapped to wall-clock microseconds via the
// base tick), with one named thread track per component.
//
// The disabled path is structural, not conditional: a nil *Tracer hands out
// nil *Component handles and zero-value Scopes, and every recording method
// no-ops on its nil receiver. Model code can therefore instrument
// unconditionally; with tracing off the cost is a single predictable branch.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// baseTicksPerMicrosecond converts base cycles to trace microseconds:
// 6 GHz base clock → 6000 ticks per µs (one tick = 1/6 ns).
const baseTicksPerMicrosecond = 6000.0

// DefaultMaxEvents bounds a tracer's total buffered events. Past the cap new
// events are dropped (and counted); a long fdtd run can otherwise produce a
// multi-gigabyte trace nobody can load.
const DefaultMaxEvents = 4 << 20

// KV is one typed payload attribute attached to an event.
type KV struct {
	K string
	V any // string, integer or float — JSON-encoded at flush
}

// eventKind discriminates buffered events.
type eventKind uint8

const (
	evSpan    eventKind = iota // Chrome "X" complete event: start + duration
	evInstant                  // Chrome "i" instant event
)

// event is one buffered trace record. Timestamps are base cycles.
type event struct {
	kind  eventKind
	name  string
	start int64
	dur   int64
	args  []KV
}

// Tracer collects events from a set of components and exports them. Create
// one per simulated run; a nil Tracer is the disabled state and is safe to
// use everywhere.
type Tracer struct {
	// MaxEvents caps buffered events across all components (0 selects
	// DefaultMaxEvents). Set before recording starts.
	MaxEvents int64

	mu     sync.Mutex // guards the component registry only
	comps  []*Component
	byName map[string]*Component

	total   atomic.Int64 // buffered events across components
	dropped atomic.Int64
}

// New returns an enabled tracer.
func New() *Tracer {
	return &Tracer{byName: map[string]*Component{}}
}

// Component returns the (possibly new) track with the given name. Returns
// nil on a nil tracer — the disabled fast path. Safe for concurrent use;
// recording on the returned component is not (one component belongs to one
// simulated run's goroutine).
func (t *Tracer) Component(name string) *Component {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.byName[name]; ok {
		return c
	}
	c := &Component{t: t, name: name, id: len(t.comps) + 1}
	t.comps = append(t.comps, c)
	t.byName[name] = c
	return c
}

// Dropped returns the number of events discarded over the MaxEvents cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Events returns the number of buffered events.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

func (t *Tracer) cap() int64 {
	if t.MaxEvents > 0 {
		return t.MaxEvents
	}
	return DefaultMaxEvents
}

// admit reserves one event slot, returning false when the cap is exhausted.
func (t *Tracer) admit() bool {
	if t.total.Add(1) > t.cap() {
		t.total.Add(-1)
		t.dropped.Add(1)
		return false
	}
	return true
}

// Component is one named track: a lock-free append-only event buffer owned
// by a single model component. All methods are nil-receiver safe.
type Component struct {
	t    *Tracer
	name string
	id   int
	evs  []event
}

// Name returns the track name ("" on nil).
func (c *Component) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// At returns a Scope stamping this component's events with the given base
// cycle offset — the bridge between a per-launch engine clock (which starts
// at zero every launch) and the run-global timeline. Safe on nil.
func (c *Component) At(offset int64) Scope { return Scope{c: c, off: offset} }

// Span records a complete event [start, start+dur) in component-local time.
func (c *Component) Span(name string, start, dur int64, args ...KV) {
	c.At(0).Span(name, start, dur, args...)
}

// Instant records a point event in component-local time.
func (c *Component) Instant(name string, ts int64, args ...KV) {
	c.At(0).Instant(name, ts, args...)
}

// Scope is a Component handle plus a base-cycle offset. The zero value is
// the disabled state: every method no-ops. Model objects embed a Scope field
// so instrumentation costs one nil check when tracing is off.
type Scope struct {
	c   *Component
	off int64
}

// Enabled reports whether events recorded through this scope are kept.
func (s Scope) Enabled() bool { return s.c != nil }

// WithOffset returns the scope shifted by additional base cycles.
func (s Scope) WithOffset(delta int64) Scope {
	if s.c == nil {
		return s
	}
	return Scope{c: s.c, off: s.off + delta}
}

// Span records a complete event [start, start+dur) on the scope's track.
// start is in the scope's local clock; negative durations clamp to 0.
func (s Scope) Span(name string, start, dur int64, args ...KV) {
	if s.c == nil || !s.c.t.admit() {
		return
	}
	if dur < 0 {
		dur = 0
	}
	s.c.evs = append(s.c.evs, event{kind: evSpan, name: name, start: start + s.off, dur: dur, args: args})
}

// Instant records a point event on the scope's track.
func (s Scope) Instant(name string, ts int64, args ...KV) {
	if s.c == nil || !s.c.t.admit() {
		return
	}
	s.c.evs = append(s.c.evs, event{kind: evInstant, name: name, start: ts + s.off, args: args})
}

// Event is the exported read-only view of one buffered record, as handed to
// VisitEvents. Timestamps are engine base cycles on the run-global clock.
type Event struct {
	Track   string // component (track) name
	Name    string // event name
	Start   int64  // base cycle
	Dur     int64  // span duration in base cycles (0 for instants)
	Instant bool   // true for instant (point) events
}

// VisitEvents calls fn for every buffered event in deterministic order:
// components in registration order, each component's events in recording
// order. A nil tracer visits nothing. The tracer remains usable afterwards
// (events are not consumed).
//
// This is the supported aggregation surface for the profiling layer
// (internal/profile); packages outside it must not re-aggregate raw spans
// (scripts/verify.sh enforces this).
func (t *Tracer) VisitEvents(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	comps := append([]*Component(nil), t.comps...)
	t.mu.Unlock()
	for _, c := range comps {
		for i := range c.evs {
			ev := &c.evs[i]
			fn(Event{
				Track:   c.name,
				Name:    ev.name,
				Start:   ev.start,
				Dur:     ev.dur,
				Instant: ev.kind == evInstant,
			})
		}
	}
}

// chromeEvent is the trace_event JSON wire format.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// usOf converts base cycles to trace microseconds.
func usOf(cycles int64) float64 { return float64(cycles) / baseTicksPerMicrosecond }

// WriteChromeJSON merges every component buffer, sorts events by (start
// cycle, component id, buffer order) and writes a Chrome trace_event JSON
// array. The output is deterministic for a deterministic run. The tracer
// remains usable afterwards (events are not consumed).
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	t.mu.Lock()
	comps := append([]*Component(nil), t.comps...)
	t.mu.Unlock()

	type flat struct {
		ev   *event
		comp *Component
		seq  int
	}
	var all []flat
	for _, c := range comps {
		for i := range c.evs {
			all = append(all, flat{ev: &c.evs[i], comp: c, seq: i})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ev.start != b.ev.start {
			return a.ev.start < b.ev.start
		}
		if a.comp.id != b.comp.id {
			return a.comp.id < b.comp.id
		}
		return a.seq < b.seq
	})

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := func(e chromeEvent, last bool) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if !last {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		return bw.WriteByte('\n')
	}
	// Metadata: process and per-component thread names and ordering.
	meta := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "distda-sim (base tick = 1/6 ns)"},
	}}
	if d := t.Dropped(); d > 0 {
		meta = append(meta, chromeEvent{
			Name: "trace_dropped_events", Ph: "M", Pid: 1, Tid: 0,
			Args: map[string]any{"dropped": d},
		})
	}
	for _, c := range comps {
		meta = append(meta,
			chromeEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: c.id,
				Args: map[string]any{"name": c.name}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: c.id,
				Args: map[string]any{"sort_index": c.id}},
		)
	}
	for _, e := range meta {
		if err := enc(e, false); err != nil {
			return err
		}
	}
	for i, f := range all {
		ce := chromeEvent{Name: f.ev.name, Ts: usOf(f.ev.start), Pid: 1, Tid: f.comp.id}
		switch f.ev.kind {
		case evSpan:
			ce.Ph = "X"
			d := usOf(f.ev.dur)
			ce.Dur = &d
		case evInstant:
			ce.Ph = "i"
			ce.S = "t"
		}
		if len(f.ev.args) > 0 {
			ce.Args = make(map[string]any, len(f.ev.args))
			for _, kv := range f.ev.args {
				ce.Args[kv.K] = kv.V
			}
		}
		if err := enc(ce, i == len(all)-1); err != nil {
			return err
		}
	}
	if len(all) == 0 {
		// The metadata loop above always emitted trailing commas; close the
		// array with a harmless terminal metadata record.
		if err := enc(chromeEvent{Name: "trace_end", Ph: "M", Pid: 1, Tid: 0}, true); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// Summary returns a one-line description for logs.
func (t *Tracer) Summary() string {
	if t == nil {
		return "trace: disabled"
	}
	t.mu.Lock()
	n := len(t.comps)
	t.mu.Unlock()
	return fmt.Sprintf("trace: %d events on %d tracks (%d dropped)", t.Events(), n, t.Dropped())
}
