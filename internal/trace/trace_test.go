package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilTracerIsSafe exercises every recording entry point on the disabled
// (nil) fast path.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	c := tr.Component("engine")
	if c != nil {
		t.Fatal("nil tracer must hand out nil components")
	}
	c.Span("x", 0, 10)
	c.Instant("y", 5)
	s := c.At(100)
	if s.Enabled() {
		t.Fatal("scope from nil component must be disabled")
	}
	s.Span("x", 0, 10, KV{"k", 1})
	s.Instant("y", 5)
	s = s.WithOffset(50)
	s.Span("z", 0, 1)
	if tr.Events() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must count nothing")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil tracer export = %q", buf.String())
	}
	if tr.Summary() != "trace: disabled" {
		t.Fatalf("summary = %q", tr.Summary())
	}
}

// decodeTrace parses an exported trace into raw event maps.
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var evs []map[string]any
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, data)
	}
	return evs
}

func TestChromeExport(t *testing.T) {
	tr := New()
	eng := tr.Component("engine")
	au := tr.Component("fill:A")
	eng.Span("run", 0, 600, KV{"cycles", int64(600)})
	au.At(60).Span("fetch", 0, 120) // offset scope: lands at 60
	au.Instant("close", 300, KV{"obj", "A"})
	if tr.Events() != 3 {
		t.Fatalf("events = %d", tr.Events())
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())

	// Metadata: process_name plus thread_name/thread_sort_index per track.
	names := map[string]int{}
	tracks := map[string]bool{}
	for _, e := range evs {
		names[e["ph"].(string)]++
		if e["ph"] == "M" && e["name"] == "thread_name" {
			tracks[e["args"].(map[string]any)["name"].(string)] = true
		}
	}
	if !tracks["engine"] || !tracks["fill:A"] {
		t.Fatalf("missing thread_name metadata: %v", tracks)
	}
	if names["X"] != 2 || names["i"] != 1 {
		t.Fatalf("event phase counts = %v", names)
	}

	// Clock mapping: 600 base cycles = 0.1 us (1/6 ns tick).
	for _, e := range evs {
		if e["ph"] == "X" && e["name"] == "run" {
			if ts := e["ts"].(float64); ts != 0 {
				t.Fatalf("run ts = %g", ts)
			}
			if dur := e["dur"].(float64); dur != 0.1 {
				t.Fatalf("run dur = %g us, want 0.1", dur)
			}
			if c := e["args"].(map[string]any)["cycles"].(float64); c != 600 {
				t.Fatalf("args lost: %v", e["args"])
			}
		}
		if e["ph"] == "X" && e["name"] == "fetch" {
			if ts := e["ts"].(float64); ts != 0.01 {
				t.Fatalf("offset scope ts = %g us, want 0.01", ts)
			}
		}
	}
}

// TestExportIsSorted verifies the merge-on-flush ordering: events from
// different component buffers interleave by start cycle.
func TestExportIsSorted(t *testing.T) {
	tr := New()
	a := tr.Component("a")
	b := tr.Component("b")
	a.Instant("a2", 200)
	a.Instant("a0", 0)
	b.Instant("b1", 100)
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, e := range decodeTrace(t, buf.Bytes()) {
		if e["ph"] == "i" {
			order = append(order, e["name"].(string))
		}
	}
	// Same-component buffer order is preserved; cross-component merge is by
	// start cycle (a2 recorded first but starts last).
	want := []string{"a0", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventCap(t *testing.T) {
	tr := New()
	tr.MaxEvents = 10
	c := tr.Component("hot")
	for i := 0; i < 25; i++ {
		c.Instant("e", int64(i))
	}
	if tr.Events() != 10 {
		t.Fatalf("buffered = %d, want 10", tr.Events())
	}
	if tr.Dropped() != 15 {
		t.Fatalf("dropped = %d, want 15", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range decodeTrace(t, buf.Bytes()) {
		if e["name"] == "trace_dropped_events" {
			found = true
			if d := e["args"].(map[string]any)["dropped"].(float64); d != 15 {
				t.Fatalf("dropped metadata = %g", d)
			}
		}
	}
	if !found {
		t.Fatal("dropped-events metadata missing")
	}
}

// TestEmptyTracerExport: a tracer with components but no events must still
// produce valid JSON.
func TestEmptyTracerExport(t *testing.T) {
	tr := New()
	tr.Component("idle")
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decodeTrace(t, buf.Bytes())
}

func TestComponentReuse(t *testing.T) {
	tr := New()
	a := tr.Component("x")
	b := tr.Component("x")
	if a != b {
		t.Fatal("same name must return the same track")
	}
	if tr.Component("y") == a {
		t.Fatal("distinct names must return distinct tracks")
	}
}

func TestNegativeDurationClamps(t *testing.T) {
	tr := New()
	tr.Component("c").Span("s", 10, -5)
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range decodeTrace(t, buf.Bytes()) {
		if e["ph"] == "X" && e["dur"].(float64) != 0 {
			t.Fatalf("negative duration not clamped: %v", e)
		}
	}
}
