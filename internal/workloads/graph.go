package workloads

import "distda/internal/ir"

// BFS reproduces the level-synchronous breadth-first search of the
// accelerator literature in edge-parallel (COO) form: per level one offload
// streams the edge list and performs indirect level probes and predicated
// frontier updates — the paper's irregular category. The edge-parallel
// formulation gives each level a single long offload, the shape the
// Dist-DA interface pipelines well.
func BFS(s Scale) *Workload {
	nodes := s.pick(64, 2048, 4096)
	ef := s.pick(4, 16, 32)
	r := rng("bfs")
	rowptr, col := csr(r, nodes, ef)
	m := len(col)
	src := make([]float64, m)
	for v := 0; v < nodes; v++ {
		for e := int(rowptr[v]); e < int(rowptr[v+1]); e++ {
			src[e] = float64(v)
		}
	}
	maxLev := bfsLevels(rowptr, col, nodes)
	k := &ir.Kernel{
		Name:   "bfs",
		Params: []string{"M", "D"},
		Objects: []ir.ObjDecl{
			{Name: "esrc", Len: m, ElemBytes: 8},
			{Name: "col", Len: m, ElemBytes: 8},
			{Name: "level", Len: nodes, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("d", ir.C(0), ir.P("D"),
				ir.Loop("e", ir.C(0), ir.P("M"),
					ir.Set("v", ir.Ld("esrc", ir.V("e"))),
					ir.Cond(ir.EqE(ir.Ld("level", ir.L("v")), ir.V("d")),
						[]ir.Stmt{
							ir.Set("n", ir.Ld("col", ir.V("e"))),
							ir.Cond(ir.EqE(ir.Ld("level", ir.L("n")), ir.C(-1)),
								[]ir.Stmt{ir.St("level", ir.L("n"), ir.AddE(ir.V("d"), ir.C(1)))}, nil),
						}, nil),
				),
			),
		},
	}
	gen := func() map[string][]float64 {
		level := make([]float64, nodes)
		for i := range level {
			level[i] = -1
		}
		level[0] = 0
		return map[string][]float64{
			"esrc":  append([]float64{}, src...),
			"col":   append([]float64{}, col...),
			"level": level,
		}
	}
	return &Workload{
		Name:   "bfs",
		Desc:   itoa(nodes) + " nodes, edge factor " + itoa(ef) + ", edge-parallel",
		Kernel: k,
		Params: map[string]float64{"M": float64(m), "D": float64(maxLev)},
		Gen:    gen,
	}
}

// BFSMT is the multithreading case-study variant: each level's edge scan is
// chunked across threads (frontier updates touch distinct unvisited
// vertices per level, and chunked sequential execution is deterministic).
func BFSMT(s Scale) *Workload {
	base := BFS(s)
	inner := ir.Loops(base.Kernel.Body)[1]
	k := &ir.Kernel{
		Name:    "bfs-mt",
		Params:  base.Kernel.Params,
		Objects: base.Kernel.Objects,
		Body: []ir.Stmt{
			ir.Loop("d", ir.C(0), ir.P("D"),
				&ir.For{IV: inner.IV, Lo: inner.Lo, Hi: inner.Hi, Step: inner.Step,
					Parallel: true, Body: inner.Body},
			),
		},
	}
	return &Workload{Name: "bfs-mt", Desc: base.Desc, Kernel: k, Params: base.Params, Gen: base.Gen}
}

// bfsLevels computes the level count from node 0 (for the D parameter).
func bfsLevels(rowptr, col []float64, nodes int) int {
	level := make([]int, nodes)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	frontier := []int{0}
	depth := 0
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for e := int(rowptr[v]); e < int(rowptr[v+1]); e++ {
				n := int(col[e])
				if level[n] == -1 {
					level[n] = depth + 1
					next = append(next, n)
				}
			}
		}
		frontier = next
		depth++
	}
	return depth
}

// Pagerank reproduces the serial pull-based implementation: per vertex a
// streamed edge scan with indirect rank/out-degree gathers, double-buffered
// by parity.
func Pagerank(s Scale) *Workload {
	nodes := s.pick(64, 2048, 16384)
	ef := s.pick(4, 16, 16)
	iters := s.pick(2, 3, 10)
	r := rng("pagerank")
	rowptr, col := csr(r, nodes, ef)
	edgeSum := func(rankObj string) []ir.Stmt {
		return []ir.Stmt{
			ir.Loop("e", ir.Ld("rowptr", ir.V("v")), ir.Ld("rowptr", ir.AddE(ir.V("v"), ir.C(1))),
				ir.Set("u", ir.Ld("col", ir.V("e"))),
				ir.Set("acc", ir.AddE(ir.L("acc"),
					ir.DivE(ir.Ld(rankObj, ir.L("u")), ir.Ld("outdeg", ir.L("u"))))),
			),
		}
	}
	body := func(src, dst string) []ir.Stmt {
		return append(
			append([]ir.Stmt{ir.Set("acc", ir.C(0))}, edgeSum(src)...),
			ir.St(dst, ir.V("v"),
				ir.AddE(ir.DivE(ir.C(0.15), ir.P("N")), ir.MulE(ir.C(0.85), ir.L("acc")))),
		)
	}
	k := &ir.Kernel{
		Name:   "pagerank",
		Params: []string{"N", "IT"},
		Objects: []ir.ObjDecl{
			{Name: "rowptr", Len: nodes + 1, ElemBytes: 8},
			{Name: "col", Len: len(col), ElemBytes: 8},
			{Name: "outdeg", Len: nodes, ElemBytes: 8},
			{Name: "rankA", Len: nodes, ElemBytes: 8},
			{Name: "rankB", Len: nodes, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("it", ir.C(0), ir.P("IT"),
				ir.Loop("v", ir.C(0), ir.P("N"),
					ir.Cond(ir.EqE(ir.ModE(ir.V("it"), ir.C(2)), ir.C(0)),
						body("rankA", "rankB"),
						body("rankB", "rankA"),
					),
				),
			),
		},
	}
	gen := func() map[string][]float64 {
		outdeg := make([]float64, nodes)
		for i := range outdeg {
			outdeg[i] = 1 // avoid zero divisors; incremented below
		}
		for _, c := range col {
			outdeg[int(c)]++
		}
		rankA := make([]float64, nodes)
		for i := range rankA {
			rankA[i] = 1 / float64(nodes)
		}
		return map[string][]float64{
			"rowptr": append([]float64{}, rowptr...),
			"col":    append([]float64{}, col...),
			"outdeg": outdeg,
			"rankA":  rankA,
			"rankB":  zeros(nodes),
		}
	}
	return &Workload{
		Name:   "pagerank",
		Desc:   itoa(nodes) + " nodes, " + itoa(iters) + " iterations",
		Kernel: k,
		Params: map[string]float64{"N": float64(nodes), "IT": float64(iters)},
		Gen:    gen,
	}
}

// PointerChase walks a uniform random permutation cycle: the canonical
// serialized-dependence workload (one random load per step feeding the
// next address).
func PointerChase(s Scale) *Workload {
	n := s.pick(4096, 131072, 1<<20)
	steps := s.pick(2048, 32768, 1<<20)
	k := &ir.Kernel{
		Name:   "pointer-chase",
		Params: []string{"K"},
		Objects: []ir.ObjDecl{
			{Name: "next", Len: n, ElemBytes: 8},
			{Name: "out", Len: 1, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Set("p", ir.C(0)),
			ir.Loop("k", ir.C(0), ir.P("K"),
				ir.Set("p", ir.Ld("next", ir.L("p"))),
			),
			ir.St("out", ir.C(0), ir.L("p")),
		},
	}
	r := rng("pointer-chase")
	gen := func() map[string][]float64 {
		perm := r.Perm(n)
		next := make([]float64, n)
		// A single cycle through the permutation order.
		for i := 0; i < n; i++ {
			next[perm[i]] = float64(perm[(i+1)%n])
		}
		return map[string][]float64{"next": next, "out": {0}}
	}
	return &Workload{
		Name:   "pointer-chase",
		Desc:   itoa(n*8/1024) + " KB uniform distribution, " + itoa(steps) + " hops",
		Kernel: k,
		Params: map[string]float64{"K": float64(steps)},
		Gen:    gen,
	}
}
