package workloads

import "distda/internal/ir"

// PCA reproduces CortexSuite's principal-component preprocessing: per-column
// mean computation and adjacent-column correlation, both column-major
// traversals (stride-C streams) — the access pattern §VI-C singles out for
// its shallow-hierarchy latency sensitivity.
func PCA(s Scale) *Workload {
	rows := s.pick(32, 512, 1024)
	cols := s.pick(16, 96, 128)
	colIdx := func(j ir.Expr) ir.Expr { return ir.AddE(ir.MulE(ir.V("i"), ir.P("C")), j) }
	k := &ir.Kernel{
		Name:   "pca",
		Params: []string{"R", "C"},
		Objects: []ir.ObjDecl{
			{Name: "D", Len: rows * cols, ElemBytes: 8},
			{Name: "mean", Len: cols, ElemBytes: 8},
			{Name: "corr", Len: cols, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			// Column means (column-major stride-C stream).
			ir.Loop("j", ir.C(0), ir.P("C"),
				ir.Set("s", ir.C(0)),
				ir.Loop("i", ir.C(0), ir.P("R"),
					ir.Set("s", ir.AddE(ir.L("s"), ir.Ld("D", colIdx(ir.V("j"))))),
				),
				ir.St("mean", ir.V("j"), ir.DivE(ir.L("s"), ir.P("R"))),
			),
			// Adjacent-column correlation accumulators.
			ir.Loop("j", ir.C(0), ir.SubE(ir.P("C"), ir.C(1)),
				ir.Set("a", ir.C(0)),
				ir.Loop("i", ir.C(0), ir.P("R"),
					ir.Set("a", ir.AddE(ir.L("a"),
						ir.MulE(
							ir.SubE(ir.Ld("D", colIdx(ir.V("j"))), ir.Ld("mean", ir.V("j"))),
							ir.SubE(ir.Ld("D", colIdx(ir.AddE(ir.V("j"), ir.C(1)))), ir.Ld("mean", ir.AddE(ir.V("j"), ir.C(1))))))),
				),
				ir.St("corr", ir.V("j"), ir.DivE(ir.L("a"), ir.P("R"))),
			),
		},
	}
	r := rng("pca")
	gen := func() map[string][]float64 {
		return map[string][]float64{
			"D":    randUnit(r, rows*cols),
			"mean": zeros(cols),
			"corr": zeros(cols),
		}
	}
	return &Workload{
		Name:   "pca",
		Desc:   dims(rows, cols) + " samples, column-major",
		Kernel: k,
		Params: map[string]float64{"R": float64(rows), "C": float64(cols)},
		Gen:    gen,
	}
}

// SpMV is the §VI-D case-study benchmark: CSR sparse matrix-vector
// multiplication with short inner loops that do not amortize naive
// distributed offload (Dist-DA-B's 0.44x) until the loop nest is localized.
func SpMV(s Scale) *Workload {
	rows := s.pick(64, 1024, 4096)
	nnzPerRow := s.pick(6, 16, 20)
	r := rng("spmv")
	rowptr := make([]float64, rows+1)
	for v := 0; v < rows; v++ {
		rowptr[v+1] = rowptr[v] + float64(1+r.Intn(2*nnzPerRow-1))
	}
	nnz := int(rowptr[rows])
	k := &ir.Kernel{
		Name:   "spmv",
		Params: []string{"R"},
		Objects: []ir.ObjDecl{
			{Name: "rowptr", Len: rows + 1, ElemBytes: 8},
			{Name: "colidx", Len: nnz, ElemBytes: 8},
			{Name: "val", Len: nnz, ElemBytes: 8},
			{Name: "x", Len: rows, ElemBytes: 8},
			{Name: "y", Len: rows, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("row", ir.C(0), ir.P("R"),
				ir.Set("acc", ir.C(0)),
				ir.Loop("e", ir.Ld("rowptr", ir.V("row")), ir.Ld("rowptr", ir.AddE(ir.V("row"), ir.C(1))),
					ir.Set("acc", ir.AddE(ir.L("acc"),
						ir.MulE(ir.Ld("val", ir.V("e")), ir.Ld("x", ir.Ld("colidx", ir.V("e")))))),
				),
				ir.St("y", ir.V("row"), ir.L("acc")),
			),
		},
	}
	gen := func() map[string][]float64 {
		colidx := make([]float64, nnz)
		for i := range colidx {
			colidx[i] = float64(r.Intn(rows))
		}
		return map[string][]float64{
			"rowptr": append([]float64{}, rowptr...),
			"colidx": colidx,
			"val":    randUnit(r, nnz),
			"x":      randUnit(r, rows),
			"y":      zeros(rows),
		}
	}
	return &Workload{
		Name:   "spmv",
		Desc:   itoa(rows) + " rows CSR, ~" + itoa(nnzPerRow) + " nnz/row",
		Kernel: k,
		Params: map[string]float64{"R": float64(rows)},
		Gen:    gen,
	}
}
