package workloads

import "distda/internal/ir"

// FDTD2D reproduces Polybench's 2-D finite-difference time-domain kernel:
// three streaming field-update sweeps per time step, each an in-place
// distance-0 update reading a neighboring field.
func FDTD2D(s Scale) *Workload {
	nx := s.pick(24, 160, 256)
	ny := s.pick(32, 192, 256)
	t := s.pick(2, 3, 10)
	n := nx * ny
	idx := ir.Idx2(ir.V("i"), ir.P("NY"), ir.V("j"))
	k := &ir.Kernel{
		Name:   "fdtd-2d",
		Params: []string{"NX", "NY", "T"},
		Objects: []ir.ObjDecl{
			{Name: "ex", Len: n, ElemBytes: 8},
			{Name: "ey", Len: n, ElemBytes: 8},
			{Name: "hz", Len: n, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("t", ir.C(0), ir.P("T"),
				ir.Loop("i", ir.C(1), ir.P("NX"),
					ir.Loop("j", ir.C(0), ir.P("NY"),
						ir.St("ey", idx, ir.SubE(ir.Ld("ey", idx),
							ir.MulE(ir.C(0.5), ir.SubE(ir.Ld("hz", idx), ir.Ld("hz", ir.SubE(idx, ir.P("NY"))))))),
					),
				),
				ir.Loop("i", ir.C(0), ir.P("NX"),
					ir.Loop("j", ir.C(1), ir.P("NY"),
						ir.St("ex", idx, ir.SubE(ir.Ld("ex", idx),
							ir.MulE(ir.C(0.5), ir.SubE(ir.Ld("hz", idx), ir.Ld("hz", ir.SubE(idx, ir.C(1))))))),
					),
				),
				ir.Loop("i", ir.C(0), ir.SubE(ir.P("NX"), ir.C(1)),
					ir.Loop("j", ir.C(0), ir.SubE(ir.P("NY"), ir.C(1)),
						ir.St("hz", idx, ir.SubE(ir.Ld("hz", idx),
							ir.MulE(ir.C(0.7),
								ir.AddE(ir.SubE(ir.Ld("ex", ir.AddE(idx, ir.C(1))), ir.Ld("ex", idx)),
									ir.SubE(ir.Ld("ey", ir.AddE(idx, ir.P("NY"))), ir.Ld("ey", idx)))))),
					),
				),
			),
		},
	}
	r := rng("fdtd-2d")
	gen := func() map[string][]float64 {
		return map[string][]float64{
			"ex": randUnit(r, n), "ey": randUnit(r, n), "hz": randUnit(r, n),
		}
	}
	return &Workload{
		Name:   "fdtd-2d",
		Desc:   "FDTD fields " + dims(nx, ny) + ", " + itoa(t) + " steps",
		Kernel: k,
		Params: map[string]float64{"NX": float64(nx), "NY": float64(ny), "T": float64(t)},
		Gen:    gen,
	}
}

// Cholesky reproduces Polybench's in-place factorization: per (j, i) pair a
// streamed dot-product reduction over the already-factored prefix, with the
// scalar updates on the host. Its many short launches give the highest
// %init in Table VI.
func Cholesky(s Scale) *Workload {
	n := s.pick(24, 160, 360)
	rowJ := func(kv ir.Expr) ir.Expr { return ir.AddE(ir.MulE(ir.V("j"), ir.P("N")), kv) }
	k := &ir.Kernel{
		Name:    "cholesky",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: n * n, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Loop("j", ir.C(0), ir.P("N"),
				ir.Set("sum", ir.C(0)),
				ir.Loop("k", ir.C(0), ir.V("j"),
					ir.Set("sum", ir.AddE(ir.L("sum"), ir.MulE(ir.Ld("A", rowJ(ir.V("k"))), ir.Ld("A", rowJ(ir.V("k")))))),
				),
				ir.St("A", rowJ(ir.V("j")), ir.SqrtE(ir.SubE(ir.Ld("A", rowJ(ir.V("j"))), ir.L("sum")))),
				ir.Loop("i", ir.AddE(ir.V("j"), ir.C(1)), ir.P("N"),
					ir.Set("s2", ir.C(0)),
					ir.Loop("k", ir.C(0), ir.V("j"),
						ir.Set("s2", ir.AddE(ir.L("s2"),
							ir.MulE(ir.Ld("A", ir.AddE(ir.MulE(ir.V("i"), ir.P("N")), ir.V("k"))),
								ir.Ld("A", rowJ(ir.V("k")))))),
					),
					ir.St("A", ir.AddE(ir.MulE(ir.V("i"), ir.P("N")), ir.V("j")),
						ir.DivE(ir.SubE(ir.Ld("A", ir.AddE(ir.MulE(ir.V("i"), ir.P("N")), ir.V("j"))), ir.L("s2")),
							ir.Ld("A", rowJ(ir.V("j"))))),
				),
			),
		},
	}
	r := rng("cholesky")
	gen := func() map[string][]float64 {
		// Symmetric positive definite: A = B·Bᵀ + n·I.
		b := randUnit(r, n*n)
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				var v float64
				for t := 0; t < n; t++ {
					v += b[i*n+t] * b[j*n+t]
				}
				if i == j {
					v += float64(n)
				}
				a[i*n+j] = v
				a[j*n+i] = v
			}
		}
		return map[string][]float64{"A": a}
	}
	return &Workload{
		Name:   "cholesky",
		Desc:   "SPD matrix " + dims(n, n),
		Kernel: k,
		Params: map[string]float64{"N": float64(n)},
		Gen:    gen,
	}
}

// ADI reproduces Polybench's alternating-direction-implicit sweeps: a
// forward row sweep with a distance-1 recurrence (store-to-load forwarding)
// followed by the same along columns (stride-N streams).
func ADI(s Scale) *Workload {
	n := s.pick(24, 160, 1024)
	t := s.pick(1, 2, 4)
	idxRow := ir.Idx2(ir.V("i"), ir.P("N"), ir.V("j"))
	idxCol := ir.Idx2(ir.V("i2"), ir.P("N"), ir.V("j2"))
	k := &ir.Kernel{
		Name:   "adi",
		Params: []string{"N", "T"},
		Objects: []ir.ObjDecl{
			{Name: "X", Len: n * n, ElemBytes: 8},
			{Name: "Acoef", Len: n * n, ElemBytes: 8},
			{Name: "B", Len: n * n, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("t", ir.C(0), ir.P("T"),
				// Row sweep: X[i][j] -= X[i][j-1]*A[i][j]/B[i][j-1];
				//            B[i][j] -= A[i][j]*A[i][j]/B[i][j-1].
				ir.Loop("i", ir.C(0), ir.P("N"),
					ir.Loop("j", ir.C(1), ir.P("N"),
						ir.St("X", idxRow, ir.SubE(ir.Ld("X", idxRow),
							ir.DivE(ir.MulE(ir.Ld("X", ir.SubE(idxRow, ir.C(1))), ir.Ld("Acoef", idxRow)),
								ir.Ld("B", ir.SubE(idxRow, ir.C(1)))))),
						ir.St("B", idxRow, ir.SubE(ir.Ld("B", idxRow),
							ir.DivE(ir.MulE(ir.Ld("Acoef", idxRow), ir.Ld("Acoef", idxRow)),
								ir.Ld("B", ir.SubE(idxRow, ir.C(1)))))),
					),
				),
				// Column sweep: the same recurrence down each column
				// (innermost i2: stride-N streams with distance-1 forward).
				ir.Loop("j2", ir.C(0), ir.P("N"),
					ir.Loop("i2", ir.C(1), ir.P("N"),
						ir.St("X", idxCol, ir.SubE(ir.Ld("X", idxCol),
							ir.DivE(ir.MulE(ir.Ld("X", ir.SubE(idxCol, ir.P("N"))), ir.Ld("Acoef", idxCol)),
								ir.Ld("B", ir.SubE(idxCol, ir.P("N")))))),
						ir.St("B", idxCol, ir.SubE(ir.Ld("B", idxCol),
							ir.DivE(ir.MulE(ir.Ld("Acoef", idxCol), ir.Ld("Acoef", idxCol)),
								ir.Ld("B", ir.SubE(idxCol, ir.P("N")))))),
					),
				),
			),
		},
	}
	r := rng("adi")
	gen := func() map[string][]float64 {
		b := make([]float64, n*n)
		for i := range b {
			b[i] = 1 + r.Float64() // keep divisors away from zero
		}
		a := make([]float64, n*n)
		for i := range a {
			a[i] = 0.1 * r.Float64()
		}
		return map[string][]float64{"X": randUnit(r, n*n), "Acoef": a, "B": b}
	}
	return &Workload{
		Name:   "adi",
		Desc:   dims(n, n) + " matrix, " + itoa(t) + " rounds",
		Kernel: k,
		Params: map[string]float64{"N": float64(n), "T": float64(t)},
		Gen:    gen,
	}
}

// Seidel2D reproduces Polybench's in-place 9-point Gauss-Seidel stencil:
// the left neighbor is a distance-1 forwarded recurrence; the previous
// row's values fall outside the launch's write window and stream as
// already-updated memory.
func Seidel2D(s Scale) *Workload {
	n := s.pick(24, 256, 1000)
	t := s.pick(2, 2, 4)
	idx := ir.Idx2(ir.V("i"), ir.P("N"), ir.V("j"))
	at := func(di, dj int) ir.Expr {
		e := idx
		if di != 0 {
			e = ir.AddE(e, ir.MulE(ir.C(float64(di)), ir.P("N")))
		}
		if dj != 0 {
			e = ir.AddE(e, ir.C(float64(dj)))
		}
		return e
	}
	sum := ir.Ld("A", at(-1, -1))
	for _, d := range [][2]int{{-1, 0}, {-1, 1}, {0, -1}, {0, 0}, {0, 1}, {1, -1}, {1, 0}, {1, 1}} {
		sum = ir.AddE(sum, ir.Ld("A", at(d[0], d[1])))
	}
	k := &ir.Kernel{
		Name:    "seidel-2d",
		Params:  []string{"N", "T"},
		Objects: []ir.ObjDecl{{Name: "A", Len: n * n, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Loop("t", ir.C(0), ir.P("T"),
				ir.Loop("i", ir.C(1), ir.SubE(ir.P("N"), ir.C(1)),
					ir.Loop("j", ir.C(1), ir.SubE(ir.P("N"), ir.C(1)),
						ir.St("A", idx, ir.DivE(sum, ir.C(9))),
					),
				),
			),
		},
	}
	r := rng("seidel-2d")
	gen := func() map[string][]float64 {
		return map[string][]float64{"A": randUnit(r, n*n)}
	}
	return &Workload{
		Name:   "seidel-2d",
		Desc:   dims(n, n) + " matrix, " + itoa(t) + " sweeps",
		Kernel: k,
		Params: map[string]float64{"N": float64(n), "T": float64(t)},
		Gen:    gen,
	}
}
