package workloads

import "distda/internal/ir"

const bigCost = 1 << 20

// pathfinderBody builds one row-relaxation inner loop reading the src
// buffer (padded by one sentinel cell on each side) and writing dst.
func pathfinderBody(src, dst string) []ir.Stmt {
	wallIdx := ir.Idx2(ir.V("t"), ir.P("W"), ir.V("j"))
	return []ir.Stmt{
		ir.Set("m3", ir.MinE(ir.Ld(src, ir.V("j")),
			ir.MinE(ir.Ld(src, ir.AddE(ir.V("j"), ir.C(1))), ir.Ld(src, ir.AddE(ir.V("j"), ir.C(2)))))),
		ir.St(dst, ir.AddE(ir.V("j"), ir.C(1)), ir.AddE(ir.Ld("wall", wallIdx), ir.L("m3"))),
	}
}

// Pathfinder reproduces Rodinia's dynamic-programming grid walk: each row's
// cost is the wall cost plus the minimum of the three parent cells. The two
// row buffers alternate by parity (double buffering as two objects so each
// inner loop reads one stream and writes another).
func Pathfinder(s Scale) *Workload {
	rows := s.pick(16, 96, 384)
	cols := s.pick(64, 4096, 2048)
	k := &ir.Kernel{
		Name:   "pathfinder",
		Params: []string{"T", "W"},
		Objects: []ir.ObjDecl{
			{Name: "wall", Len: rows * cols, ElemBytes: 8},
			{Name: "bufA", Len: cols + 2, ElemBytes: 8},
			{Name: "bufB", Len: cols + 2, ElemBytes: 8},
			{Name: "result", Len: cols, ElemBytes: 8},
		},
		Body: append(pathfinderInit(),
			ir.Loop("t", ir.C(1), ir.P("T"),
				ir.Cond(ir.EqE(ir.ModE(ir.V("t"), ir.C(2)), ir.C(1)),
					[]ir.Stmt{ir.Loop("j", ir.C(0), ir.P("W"), pathfinderBody("bufA", "bufB")...)},
					[]ir.Stmt{ir.Loop("j", ir.C(0), ir.P("W"), pathfinderBody("bufB", "bufA")...)},
				),
			),
			// Copy the final row (parity of T-1) out.
			ir.Cond(ir.EqE(ir.ModE(ir.SubE(ir.P("T"), ir.C(1)), ir.C(2)), ir.C(0)),
				[]ir.Stmt{ir.Loop("j", ir.C(0), ir.P("W"),
					ir.St("result", ir.V("j"), ir.Ld("bufA", ir.AddE(ir.V("j"), ir.C(1)))))},
				[]ir.Stmt{ir.Loop("j", ir.C(0), ir.P("W"),
					ir.St("result", ir.V("j"), ir.Ld("bufB", ir.AddE(ir.V("j"), ir.C(1)))))},
			),
		),
	}
	r := rng("pathfinder")
	gen := func() map[string][]float64 {
		bufA := make([]float64, cols+2)
		bufB := make([]float64, cols+2)
		bufA[0], bufA[cols+1] = bigCost, bigCost
		bufB[0], bufB[cols+1] = bigCost, bigCost
		return map[string][]float64{
			"wall": randInts(r, rows*cols, 10),
			"bufA": bufA, "bufB": bufB,
			"result": zeros(cols),
		}
	}
	return &Workload{
		Name:   "pathfinder",
		Desc:   dims(rows, cols) + " cost grid",
		Kernel: k,
		Params: map[string]float64{"T": float64(rows), "W": float64(cols)},
		Gen:    gen,
	}
}

// pathfinderInit seeds bufA from wall row 0.
func pathfinderInit() []ir.Stmt {
	return []ir.Stmt{
		ir.Loop("j0", ir.C(0), ir.P("W"),
			ir.St("bufA", ir.AddE(ir.V("j0"), ir.C(1)), ir.Ld("wall", ir.V("j0"))),
		),
	}
}

// PathfinderMT is the multithreading case-study variant: each row's columns
// are relaxed in parallel blocks (reads touch only the previous row's
// buffer, so blocks are independent).
func PathfinderMT(s Scale) *Workload {
	base := Pathfinder(s)
	cols := int(base.Params["W"])
	blocks := 8
	bs := cols / blocks
	mkBlock := func(src, dst string) []ir.Stmt {
		lo := ir.MulE(ir.V("b"), ir.P("BS"))
		hi := ir.MulE(ir.AddE(ir.V("b"), ir.C(1)), ir.P("BS"))
		return []ir.Stmt{ir.ParLoop("b", ir.C(0), ir.P("NB"),
			ir.Loop("j", lo, hi, pathfinderBody(src, dst)...),
		)}
	}
	k := &ir.Kernel{
		Name:    "pathfinder-mt",
		Params:  []string{"T", "W", "NB", "BS"},
		Objects: base.Kernel.Objects,
		Body: append(pathfinderInit(),
			ir.Loop("t", ir.C(1), ir.P("T"),
				ir.Cond(ir.EqE(ir.ModE(ir.V("t"), ir.C(2)), ir.C(1)),
					mkBlock("bufA", "bufB"),
					mkBlock("bufB", "bufA"),
				),
			),
		),
	}
	params := map[string]float64{
		"T": base.Params["T"], "W": base.Params["W"],
		"NB": float64(blocks), "BS": float64(bs),
	}
	return &Workload{Name: "pathfinder-mt", Desc: base.Desc + ", blocked", Kernel: k, Params: params, Gen: base.Gen}
}

// NW reproduces Rodinia's Needleman-Wunsch alignment: a row-wise sweep of
// the DP matrix where the left neighbor is a distance-1 forwarded
// recurrence and the previous row streams as memory.
func NW(s Scale) *Workload {
	n := s.pick(32, 320, 724)
	idx := ir.Idx2(ir.V("i"), ir.P("N"), ir.V("j"))
	k := &ir.Kernel{
		Name:   "nw",
		Params: []string{"N", "P"},
		Objects: []ir.ObjDecl{
			{Name: "M", Len: n * n, ElemBytes: 8},
			{Name: "S", Len: n * n, ElemBytes: 8}, // similarity (precomputed)
		},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(1), ir.P("N"),
				ir.Loop("j", ir.C(1), ir.P("N"),
					ir.Set("diag", ir.AddE(ir.Ld("M", ir.SubE(ir.SubE(idx, ir.P("N")), ir.C(1))), ir.Ld("S", idx))),
					ir.Set("up", ir.SubE(ir.Ld("M", ir.SubE(idx, ir.P("N"))), ir.P("P"))),
					ir.Set("lft", ir.SubE(ir.Ld("M", ir.SubE(idx, ir.C(1))), ir.P("P"))),
					ir.St("M", idx, ir.MaxE(ir.L("diag"), ir.MaxE(ir.L("up"), ir.L("lft")))),
				),
			),
		},
	}
	r := rng("nw")
	gen := func() map[string][]float64 {
		m := make([]float64, n*n)
		const penalty = 10
		for i := 0; i < n; i++ {
			m[i*n] = -float64(i) * penalty
			m[i] = -float64(i) * penalty
		}
		// Similarity from two random sequences over a blosum-like table.
		seq1 := randInts(r, n, 20)
		seq2 := randInts(r, n, 20)
		sim := make([]float64, n*n)
		for i := 1; i < n; i++ {
			for j := 1; j < n; j++ {
				if seq1[i] == seq2[j] {
					sim[i*n+j] = 5
				} else {
					sim[i*n+j] = -3
				}
			}
		}
		return map[string][]float64{"M": m, "S": sim}
	}
	return &Workload{
		Name:   "nw",
		Desc:   "alignment matrix " + dims(n, n),
		Kernel: k,
		Params: map[string]float64{"N": float64(n), "P": 10},
		Gen:    gen,
	}
}
