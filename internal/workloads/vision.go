package workloads

import "distda/internal/ir"

// Disparity reproduces SD-VBS stereo disparity's hot loop: for each
// candidate shift, a per-pixel absolute difference against the shifted
// right image with a running minimum update. The paper's 288x352 input
// becomes H x W here. The min-update is written in select form (the
// compiler's if-conversion target), so best and disp are distance-0
// in-place streams.
func Disparity(s Scale) *Workload {
	h := s.pick(24, 128, 288)
	w := s.pick(48, 256, 352)
	shifts := s.pick(4, 8, 16)
	n := h * w
	idx := ir.Idx2(ir.V("i"), ir.P("W"), ir.V("j"))
	k := &ir.Kernel{
		Name:   "disparity",
		Params: []string{"H", "W", "S"},
		Objects: []ir.ObjDecl{
			{Name: "left", Len: n, ElemBytes: 8},
			{Name: "right", Len: n, ElemBytes: 8},
			{Name: "best", Len: n, ElemBytes: 8},
			{Name: "disp", Len: n, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("s", ir.C(0), ir.P("S"),
				ir.Loop("i", ir.C(0), ir.P("H"),
					ir.Loop("j", ir.C(0), ir.SubE(ir.P("W"), ir.P("S")),
						ir.Set("d", ir.AbsE(ir.SubE(ir.Ld("left", idx), ir.Ld("right", ir.AddE(idx, ir.V("s")))))),
						ir.Set("better", ir.LtE(ir.L("d"), ir.Ld("best", idx))),
						ir.St("best", idx, ir.SelE(ir.L("better"), ir.L("d"), ir.Ld("best", idx))),
						ir.St("disp", idx, ir.SelE(ir.L("better"), ir.V("s"), ir.Ld("disp", idx))),
					),
				),
			),
		},
	}
	r := rng("disparity")
	gen := func() map[string][]float64 {
		left := randInts(r, n, 256)
		right := make([]float64, n)
		// The right image is the left shifted by a hidden disparity plus
		// noise, so min-SAD has structure.
		hidden := 3 % shifts
		for i := 0; i < h; i++ {
			for j := 0; j < w; j++ {
				src := i*w + j - hidden
				if j-hidden >= 0 {
					right[i*w+j] = left[src] + float64(r.Intn(3))
				} else {
					right[i*w+j] = float64(r.Intn(256))
				}
			}
		}
		best := make([]float64, n)
		for i := range best {
			best[i] = 1 << 20
		}
		return map[string][]float64{"left": left, "right": right, "best": best, "disp": zeros(n)}
	}
	return &Workload{
		Name:   "disparity",
		Desc:   "stereo disparity, images " + dims(h, w),
		Kernel: k,
		Params: map[string]float64{"H": float64(h), "W": float64(w), "S": float64(shifts)},
		Gen:    gen,
	}
}

// Tracking reproduces SD-VBS feature tracking's gradient/tensor stage:
// central-difference image gradients feeding three product images — a
// multi-output streaming kernel whose sub-computations the Dist-DA
// partitioner spreads across the output objects' homes.
func Tracking(s Scale) *Workload {
	h := s.pick(24, 128, 288)
	w := s.pick(48, 256, 352)
	n := h * w
	idx := ir.Idx2(ir.V("i"), ir.P("W"), ir.V("j"))
	k := &ir.Kernel{
		Name:   "tracking",
		Params: []string{"H", "W"},
		Objects: []ir.ObjDecl{
			{Name: "img", Len: n, ElemBytes: 8},
			{Name: "ixx", Len: n, ElemBytes: 8},
			{Name: "iyy", Len: n, ElemBytes: 8},
			{Name: "ixy", Len: n, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(1), ir.SubE(ir.P("H"), ir.C(1)),
				ir.Loop("j", ir.C(1), ir.SubE(ir.P("W"), ir.C(1)),
					ir.Set("gx", ir.MulE(ir.SubE(ir.Ld("img", ir.AddE(idx, ir.C(1))), ir.Ld("img", ir.SubE(idx, ir.C(1)))), ir.C(0.5))),
					ir.Set("gy", ir.MulE(ir.SubE(ir.Ld("img", ir.AddE(idx, ir.P("W"))), ir.Ld("img", ir.SubE(idx, ir.P("W")))), ir.C(0.5))),
					ir.St("ixx", idx, ir.MulE(ir.L("gx"), ir.L("gx"))),
					ir.St("iyy", idx, ir.MulE(ir.L("gy"), ir.L("gy"))),
					ir.St("ixy", idx, ir.MulE(ir.L("gx"), ir.L("gy"))),
				),
			),
		},
	}
	r := rng("tracking")
	gen := func() map[string][]float64 {
		return map[string][]float64{
			"img": randInts(r, n, 256),
			"ixx": zeros(n), "iyy": zeros(n), "ixy": zeros(n),
		}
	}
	return &Workload{
		Name:   "tracking",
		Desc:   "feature tracking gradients, image " + dims(h, w),
		Kernel: k,
		Params: map[string]float64{"H": float64(h), "W": float64(w)},
		Gen:    gen,
	}
}

func dims(h, w int) string {
	return itoa(h) + "x" + itoa(w)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
