// Package workloads defines the paper's twelve single-threaded benchmarks
// (Table IV), the spmv case study and the multithreaded variants, each as a
// kernel in the distda IR plus a seeded synthetic input generator.
//
// The original suites (SD-VBS, Polybench, Rodinia, MachSuite, CortexSuite)
// are C programs; these kernels reproduce their innermost-loop access
// patterns and compute structure — stencils, DP wavefronts, CSR
// indirection, pointer chasing, column-major sweeps — which is what
// differentiates the offload configurations. Input sizes come in three
// scales: the paper's (Table IV), a bench scale for the reproduction
// harness, and a small scale for CI.
package workloads

import (
	"fmt"
	"math/rand"

	"distda/internal/ir"
)

// Scale selects input sizing.
type Scale int

const (
	// ScaleTest: seconds-long full-matrix CI runs.
	ScaleTest Scale = iota
	// ScaleBench: the reproduction harness default.
	ScaleBench
	// ScalePaper: Table IV sizes (long runs).
	ScalePaper
)

func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleBench:
		return "bench"
	default:
		return "paper"
	}
}

// pick returns the size for the current scale.
func (s Scale) pick(test, bench, paper int) int {
	switch s {
	case ScaleTest:
		return test
	case ScaleBench:
		return bench
	default:
		return paper
	}
}

// Workload bundles a kernel with parameters and input generation.
type Workload struct {
	Name   string
	Desc   string // Table IV input description
	Kernel *ir.Kernel
	Params map[string]float64
	Gen    func() map[string][]float64
}

// NewData generates a fresh input set.
func (w *Workload) NewData() map[string][]float64 { return w.Gen() }

// All returns the twelve paper benchmarks in Table VI order.
func All(s Scale) []*Workload {
	return []*Workload{
		Disparity(s),
		Tracking(s),
		ADI(s),
		FDTD2D(s),
		Cholesky(s),
		Seidel2D(s),
		Pathfinder(s),
		NW(s),
		BFS(s),
		Pagerank(s),
		PointerChase(s),
		PCA(s),
	}
}

// ByName returns one paper workload by short name (Table VI mnemonics).
func ByName(name string, s Scale) (*Workload, error) {
	for _, w := range All(s) {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// rng returns a deterministic per-workload generator.
func rng(name string) *rand.Rand {
	var seed int64 = 1469598103934665603
	for _, c := range name {
		seed = seed*1099511628211 + int64(c)
	}
	return rand.New(rand.NewSource(seed))
}

func zeros(n int) []float64 { return make([]float64, n) }

func randInts(r *rand.Rand, n, max int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(r.Intn(max))
	}
	return out
}

func randUnit(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// csr generates a CSR graph with n nodes and roughly ef edges per node.
// Returns rowptr (n+1), col (rowptr[n]).
func csr(r *rand.Rand, n, ef int) (rowptr, col []float64) {
	rowptr = make([]float64, n+1)
	for v := 0; v < n; v++ {
		deg := 1 + r.Intn(2*ef-1) // mean ≈ ef
		rowptr[v+1] = rowptr[v] + float64(deg)
	}
	m := int(rowptr[n])
	col = make([]float64, m)
	for e := 0; e < m; e++ {
		col[e] = float64(r.Intn(n))
	}
	return rowptr, col
}
