package workloads

import (
	"testing"

	"distda/internal/compiler"
	"distda/internal/core"
	"distda/internal/ir"
)

func TestAllKernelsValidate(t *testing.T) {
	for _, w := range All(ScaleTest) {
		if err := ir.Validate(w.Kernel); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.Desc == "" {
			t.Errorf("%s: empty description", w.Name)
		}
	}
}

func TestAllKernelsInterpret(t *testing.T) {
	for _, w := range All(ScaleTest) {
		counts, err := ir.Run(w.Kernel, w.Params, w.NewData(), nil)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if counts.Loads == 0 || counts.Instructions() == 0 {
			t.Errorf("%s: trivial execution (%d loads, %d instrs)", w.Name, counts.Loads, counts.Instructions())
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, mk := range []func(Scale) *Workload{Disparity, BFS, Pagerank, SpMV} {
		a := mk(ScaleTest)
		b := mk(ScaleTest)
		da, db := a.NewData(), b.NewData()
		for name := range da {
			for i := range da[name] {
				if da[name][i] != db[name][i] {
					t.Fatalf("%s: generator not deterministic at %s[%d]", a.Name, name, i)
				}
			}
		}
	}
}

func TestAllKernelsOffloadable(t *testing.T) {
	// Every paper workload must have at least one offloaded region under
	// Dist-DA compilation (the paper offloads all twelve).
	for _, w := range All(ScaleTest) {
		c, err := compiler.Compile(w.Kernel, compiler.Options{Mode: compiler.ModeDist})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		offloaded := 0
		for i, info := range c.Infos {
			if info.Offloaded() {
				offloaded++
			} else {
				t.Logf("%s region %d not offloaded: %s", w.Name, i, info.Why)
			}
		}
		if offloaded == 0 {
			t.Errorf("%s: no offloaded regions", w.Name)
		}
	}
}

func TestExpectedClasses(t *testing.T) {
	// Irregular-write workloads classify pipelinable; pure stream kernels
	// parallelizable (§V-A-2).
	classOf := func(w *Workload) core.RegionClass {
		c, err := compiler.Compile(w.Kernel, compiler.Options{Mode: compiler.ModeDist})
		if err != nil {
			t.Fatal(err)
		}
		worst := core.ClassParallelizable
		for _, r := range c.Regions {
			if r.Class == core.ClassPipelinable {
				worst = core.ClassPipelinable
			}
		}
		return worst
	}
	if got := classOf(Tracking(ScaleTest)); got != core.ClassParallelizable {
		t.Errorf("tracking class = %v", got)
	}
	if got := classOf(BFS(ScaleTest)); got != core.ClassPipelinable {
		t.Errorf("bfs class = %v", got)
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("nw", ScaleTest)
	if err != nil || w.Name != "nw" {
		t.Fatalf("ByName: %v", err)
	}
	if _, err := ByName("nope", ScaleTest); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestMTVariantsHaveParallelLoops(t *testing.T) {
	for _, w := range []*Workload{BFSMT(ScaleTest), PathfinderMT(ScaleTest)} {
		if err := ir.Validate(w.Kernel); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		par := false
		for _, f := range ir.Loops(w.Kernel.Body) {
			if f.Parallel {
				par = true
			}
		}
		if !par {
			t.Errorf("%s: no parallel loop", w.Name)
		}
		if _, err := ir.Run(w.Kernel, w.Params, w.NewData(), nil); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}
}

func TestCholeskyFactorizes(t *testing.T) {
	w := Cholesky(ScaleTest)
	data := w.NewData()
	orig := append([]float64{}, data["A"]...)
	if _, err := ir.Run(w.Kernel, w.Params, data, nil); err != nil {
		t.Fatal(err)
	}
	// Check L·Lᵀ ≈ original on a few entries.
	n := int(w.Params["N"])
	l := data["A"]
	for _, pair := range [][2]int{{0, 0}, {3, 2}, {n - 1, n - 1}, {n - 1, 0}} {
		i, j := pair[0], pair[1]
		var v float64
		for t := 0; t <= j; t++ {
			v += l[i*n+t] * l[j*n+t]
		}
		want := orig[i*n+j]
		if diff := v - want; diff > 1e-6*want || diff < -1e-6*want {
			t.Fatalf("L·Lᵀ[%d,%d] = %g, want %g", i, j, v, want)
		}
	}
}

func TestBFSReachesAllLevels(t *testing.T) {
	w := BFS(ScaleTest)
	data := w.NewData()
	if _, err := ir.Run(w.Kernel, w.Params, data, nil); err != nil {
		t.Fatal(err)
	}
	visited := 0
	for _, l := range data["level"] {
		if l >= 0 {
			visited++
		}
	}
	if visited < len(data["level"])/2 {
		t.Fatalf("only %d/%d nodes visited", visited, len(data["level"]))
	}
}

func TestPointerChaseIsPermutation(t *testing.T) {
	w := PointerChase(ScaleTest)
	data := w.NewData()
	n := len(data["next"])
	seen := make([]bool, n)
	for _, v := range data["next"] {
		i := int(v)
		if i < 0 || i >= n || seen[i] {
			t.Fatal("next is not a permutation")
		}
		seen[i] = true
	}
}
