#!/bin/sh
# bench.sh — run the repository's Go benchmarks and emit a machine-readable
# snapshot as BENCH_<date>.json in the repo root (schema documented at the
# end of docs/results-bench.txt). POSIX sh + awk only, no extra tooling.
#
# Usage:
#   sh scripts/bench.sh                # default: -benchtime=1x, all packages
#   BENCHTIME=5x sh scripts/bench.sh   # more iterations for stable numbers
#   OUT=custom.json sh scripts/bench.sh
#
# The date in the default filename is UTC (YYYY-MM-DD); rerunning on the same
# day overwrites that day's snapshot, which is the intent — one file per day,
# tracked in git when a PR wants to record a before/after.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-1x}
DATE=$(date -u +%Y-%m-%d)
OUT=${OUT:-BENCH_${DATE}.json}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== go test -run=NONE -bench=. -benchtime=$BENCHTIME ./..." >&2
# -run=NONE skips unit tests; benchmarks still run. Benchmark failures must
# fail the script, so no `|| true`.
go test -run=NONE -bench=. -benchtime="$BENCHTIME" ./... > "$RAW"

GOVERSION=$(go env GOVERSION)
GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
STAMP=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# Parse the standard benchmark output:
#   pkg: distda/internal/engine
#   BenchmarkName-8  5  123456 ns/op [ 17 B/op  2 allocs/op ]
# into one JSON object per benchmark, tagged with its package.
awk -v benchtime="$BENCHTIME" -v stamp="$STAMP" \
    -v goversion="$GOVERSION" -v goos="$GOOS" -v goarch="$GOARCH" '
BEGIN {
    printf "{\n"
    printf "  \"schema\": \"distda-bench/v1\",\n"
    printf "  \"date\": \"%s\",\n", stamp
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": ["
    n = 0
}
/^pkg: / { pkg = $2; next }
/^Benchmark/ && NF >= 4 && $4 == "ns/op" {
    name = $1
    procs = 1
    if (match(name, /-[0-9]+$/)) {
        procs = substr(name, RSTART + 1) + 0
        name = substr(name, 1, RSTART - 1)
    }
    if (n++) printf ","
    printf "\n    {\"package\": \"%s\", \"name\": \"%s\", \"procs\": %d, \"iterations\": %s, \"ns_per_op\": %s", \
        pkg, name, procs, $2, $3
    for (i = 5; i + 1 <= NF; i += 2) {
        if ($(i + 1) == "B/op")      printf ", \"bytes_per_op\": %s", $i
        if ($(i + 1) == "allocs/op") printf ", \"allocs_per_op\": %s", $i
    }
    printf "}"
}
END {
    printf "\n  ]\n}\n"
}' "$RAW" > "$OUT"

COUNT=$(grep -c '"name"' "$OUT" || true)
echo "bench: wrote $COUNT benchmark(s) to $OUT" >&2
