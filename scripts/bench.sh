#!/bin/sh
# bench.sh — run the repository's Go benchmarks and emit a machine-readable
# snapshot as BENCH_<date>.json in the repo root (schema documented at the
# end of docs/results-bench.txt). POSIX sh + awk only, no extra tooling.
#
# Usage:
#   sh scripts/bench.sh                 # default: 5 samples of -benchtime=1x
#   SAMPLES=10 sh scripts/bench.sh      # more samples for tighter stddev
#   BENCHTIME=5x sh scripts/bench.sh    # more iterations per sample
#   OUT=custom.json sh scripts/bench.sh
#
# Each benchmark runs SAMPLES times (go test -count); the snapshot records
# the per-benchmark mean, sample standard deviation, min and max of ns/op,
# so a reader can tell a real regression from scheduler noise without
# rerunning. Schema distda-bench/v2 (v1 recorded a single sample).
#
# The date in the default filename is UTC (YYYY-MM-DD); rerunning on the same
# day overwrites that day's snapshot, which is the intent — one file per day,
# tracked in git when a PR wants to record a before/after.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-1x}
SAMPLES=${SAMPLES:-5}
DATE=$(date -u +%Y-%m-%d)
OUT=${OUT:-BENCH_${DATE}.json}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== go test -p 1 -run=NONE -bench=. -benchtime=$BENCHTIME -count=$SAMPLES ./..." >&2
# -run=NONE skips unit tests; benchmarks still run. -p 1 serializes package
# test binaries: by default go test runs several packages concurrently,
# which corrupts wall-clock benchmark numbers. Benchmark failures must fail
# the script, so no `|| true`.
go test -p 1 -run=NONE -bench=. -benchtime="$BENCHTIME" -count="$SAMPLES" ./... > "$RAW"

GOVERSION=$(go env GOVERSION)
GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
STAMP=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# Parse the standard benchmark output:
#   pkg: distda/internal/engine
#   BenchmarkName-8  5  123456 ns/op [ 17 B/op  2 allocs/op ]
# repeated SAMPLES times per benchmark, into one JSON object per benchmark
# with mean/stddev/min/max over the samples, tagged with its package.
awk -v benchtime="$BENCHTIME" -v stamp="$STAMP" \
    -v goversion="$GOVERSION" -v goos="$GOOS" -v goarch="$GOARCH" '
/^pkg: / { pkg = $2; next }
/^Benchmark/ && NF >= 4 && $4 == "ns/op" {
    name = $1
    procs = 1
    if (match(name, /-[0-9]+$/)) {
        procs = substr(name, RSTART + 1) + 0
        name = substr(name, 1, RSTART - 1)
    }
    key = pkg SUBSEP name
    if (!(key in count)) { order[++nkeys] = key; pkgof[key] = pkg; nameof[key] = name; procsof[key] = procs }
    count[key]++
    ns = $3 + 0
    sum[key] += ns
    sumsq[key] += ns * ns
    if (count[key] == 1 || ns < minv[key]) minv[key] = ns
    if (count[key] == 1 || ns > maxv[key]) maxv[key] = ns
    for (i = 5; i + 1 <= NF; i += 2) {
        if ($(i + 1) == "B/op")      { bsum[key] += $i; bn[key]++ }
        if ($(i + 1) == "allocs/op") { asum[key] += $i; an[key]++ }
    }
    next
}
END {
    printf "{\n"
    printf "  \"schema\": \"distda-bench/v2\",\n"
    printf "  \"date\": \"%s\",\n", stamp
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": ["
    for (j = 1; j <= nkeys; j++) {
        key = order[j]
        n = count[key]
        mean = sum[key] / n
        sd = 0
        if (n > 1) {
            var = (sumsq[key] - sum[key] * sum[key] / n) / (n - 1)
            if (var > 0) sd = sqrt(var)
        }
        if (j > 1) printf ","
        printf "\n    {\"package\": \"%s\", \"name\": \"%s\", \"procs\": %d, \"samples\": %d", \
            pkgof[key], nameof[key], procsof[key], n
        printf ", \"ns_per_op\": %.1f, \"ns_stddev\": %.1f, \"ns_min\": %.1f, \"ns_max\": %.1f", \
            mean, sd, minv[key], maxv[key]
        if (bn[key]) printf ", \"bytes_per_op\": %.1f", bsum[key] / bn[key]
        if (an[key]) printf ", \"allocs_per_op\": %.1f", asum[key] / an[key]
        printf "}"
    }
    printf "\n  ]\n}\n"
}' "$RAW" > "$OUT"

COUNT=$(grep -c '"name"' "$OUT" || true)
echo "bench: wrote $COUNT benchmark(s) x $SAMPLES sample(s) to $OUT" >&2
