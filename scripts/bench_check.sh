#!/bin/sh
# bench_check.sh — compare two bench snapshots (distda-bench/v2, written by
# scripts/bench.sh) and fail when any gated benchmark regressed beyond the
# threshold. POSIX sh + awk only.
#
# Usage:
#   sh scripts/bench_check.sh BASELINE.json CURRENT.json [PATTERN] [MAX_RATIO]
#
#   PATTERN    extended-regex over benchmark names to gate on
#              (default: the engine-loop and headline benchmarks)
#   MAX_RATIO  fail when current_mean / baseline_mean exceeds this
#              (default 1.15, i.e. >15% slower fails)
#
# Benchmarks present in only one snapshot are reported but never fail the
# check (new benchmarks have no baseline; removed ones have no current).
# CI runs this as the bench regression gate; see .github/workflows/ci.yml
# for the documented override when a regression is intentional.
set -eu

if [ $# -lt 2 ]; then
    echo "usage: $0 BASELINE.json CURRENT.json [PATTERN] [MAX_RATIO]" >&2
    exit 2
fi
BASE=$1
CUR=$2
PATTERN=${3:-'^Benchmark(EngineLoop|ReproMatrix|BuildMatrix|Executors|PIMWorkload)'}
MAX=${4:-1.15}

# Each benchmark object is emitted on its own line by bench.sh, so a
# line-oriented awk extraction of (name, mean) is reliable for our own files.
extract() {
    awk '
    /"name":/ {
        name = ""; mean = ""
        if (match($0, /"name": "[^"]*"/))
            name = substr($0, RSTART + 9, RLENGTH - 10)
        if (match($0, /"ns_per_op": [0-9.]+/))
            mean = substr($0, RSTART + 13, RLENGTH - 13)
        if (name != "" && mean != "") print name, mean
    }' "$1"
}

T=$(mktemp)
trap 'rm -f "$T"' EXIT
extract "$BASE" > "$T"

extract "$CUR" | awk -v basefile="$T" -v pattern="$PATTERN" -v max="$MAX" '
BEGIN {
    while ((getline line < basefile) > 0) {
        split(line, f, " ")
        base[f[1]] = f[2]
    }
    close(basefile)
    fails = 0
}
{
    name = $1; cur = $2 + 0
    if (!(name in base)) {
        printf "bench_check: %-50s new (no baseline)\n", name
        next
    }
    b = base[name] + 0
    seen[name] = 1
    if (b <= 0) next
    ratio = cur / b
    gated = (name ~ pattern)
    status = "ok"
    if (ratio > max && gated) { status = "FAIL"; fails++ }
    else if (ratio > max)     { status = "slower (ungated)" }
    printf "bench_check: %-50s %12.1f -> %12.1f ns/op  %.3fx  %s\n", name, b, cur, ratio, status
}
END {
    for (name in base)
        if (!(name in seen))
            printf "bench_check: %-50s removed (baseline only)\n", name
    if (fails) {
        printf "bench_check: %d gated benchmark(s) regressed beyond %.2fx\n", fails, max
        exit 1
    }
    printf "bench_check: OK (gate %.2fx on /%s/)\n", max, pattern
}'
