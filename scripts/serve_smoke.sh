#!/bin/sh
# serve_smoke.sh — end-to-end smoke test for the distda-serve job server:
# builds the CLIs, generates batch reference outputs, starts a server, and
# runs distda-smoke (cmd/distda-smoke), which submits a run job and a
# matrix job through the internal/serveclient Go client and asserts the
# served bytes are identical to the batch CLI invocations (the serving
# layer's core guarantee). No curl/jq needed.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill -TERM "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$tmp/bin/" ./cmd/distda-serve ./cmd/distda-run ./cmd/distda-repro ./cmd/distda-smoke

echo "== batch CLI reference output"
"$tmp/bin/distda-run" -w fdtd-2d -c Dist-DA-F -scale test -cache-dir "$tmp/cache" >"$tmp/run.want" 2>/dev/null
"$tmp/bin/distda-repro" -scale test -fig 7 -cache-dir "$tmp/cache" >"$tmp/matrix.want" 2>/dev/null

echo "== start distda-serve"
"$tmp/bin/distda-serve" -addr localhost:0 -cache-dir "$tmp/cache" \
    -state-dir "$tmp/state" 2>"$tmp/serve.log" &
pid=$!
base=""
for _ in $(seq 1 50); do
    base=$(grep -o 'http://[^ ]*' "$tmp/serve.log" | head -1 || true)
    [ -n "$base" ] && break
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "server did not start:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi

"$tmp/bin/distda-smoke" -base "$base" \
    -run-want "$tmp/run.want" -matrix-want "$tmp/matrix.want"

echo "== graceful shutdown"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "serve smoke: OK"
