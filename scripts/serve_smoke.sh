#!/bin/sh
# serve_smoke.sh — end-to-end smoke test for the distda-serve job server:
# starts a server, submits one run job and one matrix job over HTTP, and
# asserts the served bytes are identical to the equivalent batch CLI
# invocations (the serving layer's core guarantee). Requires curl and jq.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill -TERM "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$tmp/bin/" ./cmd/distda-serve ./cmd/distda-run ./cmd/distda-repro

echo "== batch CLI reference output"
"$tmp/bin/distda-run" -w fdtd-2d -c Dist-DA-F -scale test -cache-dir "$tmp/cache" >"$tmp/run.want" 2>/dev/null
"$tmp/bin/distda-repro" -scale test -fig 7 -cache-dir "$tmp/cache" >"$tmp/matrix.want" 2>/dev/null

echo "== start distda-serve"
"$tmp/bin/distda-serve" -addr localhost:0 -cache-dir "$tmp/cache" \
    -state-dir "$tmp/state" 2>"$tmp/serve.log" &
pid=$!
base=""
for _ in $(seq 1 50); do
    base=$(grep -o 'http://[^ ]*' "$tmp/serve.log" | head -1 || true)
    [ -n "$base" ] && break
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "server did not start:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
curl -fsS "$base/healthz" >/dev/null

submit_and_fetch() {
    # $1 job spec JSON, $2 output file
    id=$(curl -fsS -X POST -d "$1" "$base/api/v1/jobs" | jq -r .id)
    for _ in $(seq 1 300); do
        state=$(curl -fsS "$base/api/v1/jobs/$id" | jq -r .state)
        case "$state" in
            done) break ;;
            failed|canceled)
                echo "job $id ended $state:" >&2
                curl -fsS "$base/api/v1/jobs/$id" >&2
                exit 1 ;;
        esac
        sleep 0.2
    done
    curl -fsS "$base/api/v1/jobs/$id/result" >"$2"
}

echo "== run job"
submit_and_fetch '{"workload": "fdtd-2d", "config": "Dist-DA-F", "scale": "test"}' "$tmp/run.got"
cmp "$tmp/run.want" "$tmp/run.got" || {
    echo "served run output differs from distda-run" >&2
    exit 1
}

echo "== matrix job"
submit_and_fetch '{"kind": "matrix", "scale": "test", "selection": {"figs": ["7"]}}' "$tmp/matrix.got"
cmp "$tmp/matrix.want" "$tmp/matrix.got" || {
    echo "served matrix output differs from distda-repro" >&2
    exit 1
}

echo "== cached resubmission"
hits_before=$(curl -fsS "$base/api/v1/stats" | jq .cache_hits)
submit_and_fetch '{"workload": "fdtd-2d", "config": "Dist-DA-F", "scale": "test"}' "$tmp/run.again"
cmp "$tmp/run.want" "$tmp/run.again"
hits_after=$(curl -fsS "$base/api/v1/stats" | jq .cache_hits)
if [ "$hits_after" -le "$hits_before" ]; then
    echo "resubmission did not hit the result cache ($hits_before -> $hits_after)" >&2
    exit 1
fi

echo "== graceful shutdown"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "serve smoke: OK"
