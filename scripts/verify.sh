#!/bin/sh
# verify.sh — the pre-merge gate: build, tests, vet, race on the packages
# that exercise parallelism, lint (when the pinned tools are installed),
# and gofmt + layering cleanliness. Exits non-zero on the first failure.
# Run from anywhere; operates on the repo root.
#
#   sh scripts/verify.sh            # every stage (the full local gate)
#   sh scripts/verify.sh build      # one stage, as the CI matrix runs them
#
# Stages: build, test, race, lint, gates. The CI workflow fans these out
# across jobs so a vet failure is reported independently of a race failure;
# locally the no-argument form runs them all in order.
set -eu

cd "$(dirname "$0")/.."

# Pinned lint tool versions — keep in sync with the Makefile lint target
# and .github/workflows/ci.yml. Pinning makes lint failures reproducible:
# a new staticcheck release cannot break CI until the pin moves.
STATICCHECK_VERSION=2025.1.1
GOVULNCHECK_VERSION=v1.1.4

stage_build() {
    echo "== go build ./..."
    go build ./...

    echo "== go vet ./..."
    go vet ./...

    echo "== gofmt -l"
    fmt=$(gofmt -l cmd internal examples 2>/dev/null || gofmt -l cmd internal)
    if [ -n "$fmt" ]; then
        echo "gofmt needed on:" >&2
        echo "$fmt" >&2
        exit 1
    fi
}

stage_test() {
    echo "== go test ./..."
    go test ./...
}

stage_race() {
    # GOMAXPROCS is left to the environment on purpose: the CI matrix runs
    # this stage at 2 and 8 to shake out schedules a single setting hides
    # (the sharded-execution tests are the main beneficiary).
    echo "== go test -race (parallel-heavy packages, GOMAXPROCS=${GOMAXPROCS:-default})"
    go test -race ./internal/engine/... ./internal/exp/... ./internal/sim/... \
        ./internal/serve/... ./internal/serveclient/... ./internal/backend/... \
        ./internal/pimdram/...
}

stage_lint() {
    # Both tools are gated on availability: the hermetic dev container does
    # not ship them (and must not install anything), while CI installs the
    # pinned versions before calling this stage.
    if command -v staticcheck >/dev/null 2>&1; then
        echo "== staticcheck ./... (pinned $STATICCHECK_VERSION in CI)"
        staticcheck ./...
    else
        echo "== staticcheck not installed; skipping (CI runs $STATICCHECK_VERSION)"
    fi
    if command -v govulncheck >/dev/null 2>&1; then
        echo "== govulncheck ./... (pinned $GOVULNCHECK_VERSION in CI)"
        govulncheck ./...
    else
        echo "== govulncheck not installed; skipping (CI runs $GOVULNCHECK_VERSION)"
    fi
}

stage_gates() {
    echo "== no sim.Config struct literals outside internal/sim"
    # Configs must come from the constructors + functional options so Validate
    # always runs; slices of constructor results ([]sim.Config{...}) are fine,
    # bare struct literals are not.
    viol=$(grep -rn 'sim\.Config{' cmd internal examples --include='*.go' \
        | grep -v '^internal/sim/' \
        | grep -v '\[\]sim\.Config{' || true)
    if [ -n "$viol" ]; then
        echo "sim.Config struct literal outside internal/sim (use sim.NewConfig + options):" >&2
        echo "$viol" >&2
        exit 1
    fi

    echo "== no raw trace-event aggregation outside internal/profile"
    # internal/profile is the single aggregation layer over raw trace events:
    # everything else must consume profiles (or render Metrics tables), never
    # walk Tracer.VisitEvents itself — otherwise attribution logic fragments
    # across the tree and merge-order determinism stops being one proof.
    viol=$(grep -rn 'VisitEvents(' cmd internal examples --include='*.go' \
        | grep -v '^internal/profile/' \
        | grep -v '^internal/trace/' || true)
    if [ -n "$viol" ]; then
        echo "raw trace span aggregation outside internal/profile (use profile.Profiler):" >&2
        echo "$viol" >&2
        exit 1
    fi

    echo "== no tree-walk ir.Run on non-test hot paths"
    # The bytecode VM (ir.Program.Run, via ir.ProgramFor / the artifact program
    # cache) replaced the tree-walk interpreter everywhere results are produced;
    # ir.Run survives as the reference semantics for differential tests only.
    # Non-test code outside internal/ir must not call it, or the hot paths
    # silently regress to the slow executor.
    viol=$(grep -rn 'ir\.Run(' cmd internal examples --include='*.go' \
        | grep -v '^internal/ir/' \
        | grep -v '_test\.go:' || true)
    if [ -n "$viol" ]; then
        echo "tree-walk ir.Run outside internal/ir or tests (use ir.ProgramFor(k).Run):" >&2
        echo "$viol" >&2
        exit 1
    fi

    echo "== structured logging only in internal/serve"
    # The job server logs through Config.Logger (slog) / Config.Logf — one
    # structured line per event, keyed by job ID. Raw log.Print or stderr
    # writes would bypass the embedder's logger and desynchronize the
    # request log from the job lifecycle.
    viol=$(grep -rn 'log\.Print\|fmt\.Fprint[a-z]*(os\.Stderr' internal/serve --include='*.go' \
        | grep -v '_test\.go:' || true)
    if [ -n "$viol" ]; then
        echo "raw logging in internal/serve (use the structured logger via Server.logkv):" >&2
        echo "$viol" >&2
        exit 1
    fi

    echo "== no direct accelerator imports outside internal/backend"
    # The backend registry (internal/backend) is the only seam the rest of the
    # tree may reach accelerators through: sim, compiler, partition and profile
    # stay accelerator-agnostic, and new engines plug in by registering.
    # internal/sim/deprecated.go keeps the pre-registry option shims alive for
    # one release and is the single documented exemption; tests may import the
    # concrete packages to reach their own internals.
    viol=$(grep -rn '"distda/internal/\(iocore\|cgra\|pimdram\)"' cmd internal examples --include='*.go' \
        | grep -v '^internal/backend/' \
        | grep -v '^internal/iocore/' \
        | grep -v '^internal/cgra/' \
        | grep -v '^internal/pimdram/' \
        | grep -v '^internal/sim/deprecated\.go:' \
        | grep -v '_test\.go:' || true)
    if [ -n "$viol" ]; then
        echo "direct accelerator import outside internal/backend (go through backend.Lookup):" >&2
        echo "$viol" >&2
        exit 1
    fi
}

case "${1:-all}" in
build) stage_build ;;
test) stage_test ;;
race) stage_race ;;
lint) stage_lint ;;
gates) stage_gates ;;
all)
    stage_build
    stage_test
    stage_race
    stage_lint
    stage_gates
    echo "verify: OK"
    ;;
*)
    echo "usage: sh scripts/verify.sh [build|test|race|lint|gates]" >&2
    exit 2
    ;;
esac
