#!/bin/sh
# verify.sh — the full pre-merge gate: build, tests, vet, race on the
# packages that exercise parallelism, and gofmt cleanliness. Exits non-zero
# on the first failure. Run from anywhere; operates on the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race (parallel-heavy packages)"
go test -race ./internal/exp/... ./internal/sim/... ./internal/serve/... \
    ./internal/serveclient/... ./internal/backend/... ./internal/pimdram/...

echo "== no sim.Config struct literals outside internal/sim"
# Configs must come from the constructors + functional options so Validate
# always runs; slices of constructor results ([]sim.Config{...}) are fine,
# bare struct literals are not.
viol=$(grep -rn 'sim\.Config{' cmd internal examples --include='*.go' \
    | grep -v '^internal/sim/' \
    | grep -v '\[\]sim\.Config{' || true)
if [ -n "$viol" ]; then
    echo "sim.Config struct literal outside internal/sim (use sim.NewConfig + options):" >&2
    echo "$viol" >&2
    exit 1
fi

echo "== no raw trace-event aggregation outside internal/profile"
# internal/profile is the single aggregation layer over raw trace events:
# everything else must consume profiles (or render Metrics tables), never
# walk Tracer.VisitEvents itself — otherwise attribution logic fragments
# across the tree and merge-order determinism stops being one proof.
viol=$(grep -rn 'VisitEvents(' cmd internal examples --include='*.go' \
    | grep -v '^internal/profile/' \
    | grep -v '^internal/trace/' || true)
if [ -n "$viol" ]; then
    echo "raw trace span aggregation outside internal/profile (use profile.Profiler):" >&2
    echo "$viol" >&2
    exit 1
fi

echo "== no tree-walk ir.Run on non-test hot paths"
# The bytecode VM (ir.Program.Run, via ir.ProgramFor / the artifact program
# cache) replaced the tree-walk interpreter everywhere results are produced;
# ir.Run survives as the reference semantics for differential tests only.
# Non-test code outside internal/ir must not call it, or the hot paths
# silently regress to the slow executor.
viol=$(grep -rn 'ir\.Run(' cmd internal examples --include='*.go' \
    | grep -v '^internal/ir/' \
    | grep -v '_test\.go:' || true)
if [ -n "$viol" ]; then
    echo "tree-walk ir.Run outside internal/ir or tests (use ir.ProgramFor(k).Run):" >&2
    echo "$viol" >&2
    exit 1
fi

echo "== no direct accelerator imports outside internal/backend"
# The backend registry (internal/backend) is the only seam the rest of the
# tree may reach accelerators through: sim, compiler, partition and profile
# stay accelerator-agnostic, and new engines plug in by registering.
# internal/sim/deprecated.go keeps the pre-registry option shims alive for
# one release and is the single documented exemption; tests may import the
# concrete packages to reach their own internals.
viol=$(grep -rn '"distda/internal/\(iocore\|cgra\|pimdram\)"' cmd internal examples --include='*.go' \
    | grep -v '^internal/backend/' \
    | grep -v '^internal/iocore/' \
    | grep -v '^internal/cgra/' \
    | grep -v '^internal/pimdram/' \
    | grep -v '^internal/sim/deprecated\.go:' \
    | grep -v '_test\.go:' || true)
if [ -n "$viol" ]; then
    echo "direct accelerator import outside internal/backend (go through backend.Lookup):" >&2
    echo "$viol" >&2
    exit 1
fi

echo "== gofmt -l"
fmt=$(gofmt -l cmd internal examples 2>/dev/null || gofmt -l cmd internal)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "verify: OK"
